// Tests for the chk:: correctness-analysis layer: the lifecycle DFA,
// every invariant's failure path (seeded through chk::TestBackdoor
// corruptions the production code is designed never to produce), the
// structured report, fail-fast mode, and — the property the whole layer
// exists to protect — byte-identical simulated outcomes with the
// auditor attached vs detached.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "chk/backdoor.hpp"
#include "dmr/check.hpp"
#include "dmr/observe.hpp"
#include "dmr/simulation.hpp"

namespace {

using namespace dmr;

/// The single violation in `report`, with the suite failing loudly when
/// the count is not exactly one.
chk::Violation only_violation(const chk::Report& report) {
  EXPECT_EQ(report.violations.size(), 1u) << report.describe();
  return report.violations.empty() ? chk::Violation{}
                                   : report.violations.front();
}

// --- lifecycle DFA -----------------------------------------------------------

TEST(Lifecycle, LegalCycleIsClean) {
  chk::Auditor auditor;
  auditor.on_job_submitted(7, 0.0);
  auditor.on_job_started(7, 1.0);
  auditor.on_job_resized(7, 2.0);
  auditor.on_shrink_begun(7, 3.0);
  auditor.on_shrink_ended(7, 4.0);
  auditor.on_shrink_begun(7, 5.0);
  auditor.on_shrink_ended(7, 6.0);
  auditor.on_job_finished(7, 7.0);
  const chk::Report report = auditor.report();
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.lifecycle_edges, 8);
}

TEST(Lifecycle, StartWithoutSubmitCarriesJobIdAndTime) {
  chk::Auditor auditor;
  auditor.on_job_started(42, 12.5);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "job-lifecycle");
  EXPECT_EQ(violation.job, 42);
  EXPECT_DOUBLE_EQ(violation.sim_time, 12.5);
  EXPECT_NE(violation.message.find("never submitted"), std::string::npos);
}

TEST(Lifecycle, ResubmitWhileQueuedIsIllegal) {
  chk::Auditor auditor;
  auditor.on_job_submitted(3, 0.0);
  auditor.on_job_submitted(3, 1.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "job-lifecycle");
  EXPECT_EQ(violation.job, 3);
  EXPECT_NE(violation.message.find("resubmitted while queued"),
            std::string::npos);
}

TEST(Lifecycle, ShrinkFromQueuedNamesBothPhases) {
  chk::Auditor auditor;
  auditor.on_job_submitted(9, 0.0);
  auditor.on_shrink_begun(9, 2.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "job-lifecycle");
  EXPECT_EQ(violation.job, 9);
  EXPECT_NE(violation.message.find("queued -> reconfiguring"),
            std::string::npos);
}

TEST(Lifecycle, DoubleFinishIsIllegal) {
  chk::Auditor auditor;
  auditor.on_job_submitted(5, 0.0);
  auditor.on_job_started(5, 1.0);
  auditor.on_job_finished(5, 2.0);
  auditor.on_job_finished(5, 3.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "job-lifecycle");
  EXPECT_EQ(violation.job, 5);
  EXPECT_DOUBLE_EQ(violation.sim_time, 3.0);
  EXPECT_NE(violation.message.find("finished twice"), std::string::npos);
}

TEST(Lifecycle, OneBadEdgeAdoptsAndDoesNotCascade) {
  chk::Auditor auditor;
  auditor.on_job_started(11, 1.0);   // never submitted: one violation
  auditor.on_job_resized(11, 2.0);   // now legally running
  auditor.on_job_finished(11, 3.0);  // and legally finished
  EXPECT_EQ(auditor.report().violations.size(), 1u);
}

// --- event ordering ----------------------------------------------------------

TEST(EventOrder, BehindTheClockIsAViolation) {
  chk::Auditor auditor;
  auditor.on_event_dispatch(10.0, 0, 1, 0.0, 2);
  auditor.on_event_dispatch(5.0, 0, 2, 10.0, 3);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "event-order");
  EXPECT_DOUBLE_EQ(violation.sim_time, 10.0);
  EXPECT_NE(violation.message.find("behind the clock"), std::string::npos);
}

TEST(EventOrder, CoexistingEventsMustDispatchInOrder) {
  chk::Auditor auditor;
  // Both events queued (seqs 1 and 2, watermark 3) but the later tuple
  // pops first: a heap-ordering bug the auditor must catch.
  auditor.on_event_dispatch(5.0, 1, 2, 0.0, 3);
  auditor.on_event_dispatch(5.0, 0, 1, 5.0, 3);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "event-order");
  EXPECT_NE(violation.message.find("should have preceded"),
            std::string::npos);
}

TEST(EventOrder, EventScheduledDuringCallbackMayLandAtSameInstant) {
  chk::Auditor auditor;
  // seq 5 >= watermark 4: the second event did not coexist with the
  // first (a mid-callback arrival), so a lower lane at the same time is
  // legal.
  auditor.on_event_dispatch(5.0, 1, 2, 0.0, 4);
  auditor.on_event_dispatch(5.0, 0, 5, 5.0, 6);
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().describe();
}

TEST(EventOrder, BackdoorTimeTravelThroughTheRealEngine) {
  chk::Auditor auditor;
  sim::Engine engine;
  engine.set_auditor(&auditor);
  int fired = 0;
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(auditor.report().ok());
  // Bypass schedule_at's monotonicity guard: an event behind the clock.
  chk::TestBackdoor::push_raw_event(engine, 5.0, sim::Lane::Normal, 99);
  engine.run();
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "event-order");
  EXPECT_DOUBLE_EQ(violation.sim_time, 10.0);
}

// --- node conservation -------------------------------------------------------

rms::RmsConfig eight_nodes() {
  rms::RmsConfig config;
  config.nodes = 8;
  return config;
}

/// An 8-node manager with two running 3-node jobs (ids returned).
struct ManagerFixture {
  rms::Manager manager;
  JobId first = kInvalidJob;
  JobId second = kInvalidJob;

  ManagerFixture() : manager(eight_nodes()) {
    rms::JobSpec spec;
    spec.requested_nodes = 3;
    spec.min_nodes = 1;
    spec.max_nodes = 8;
    spec.time_limit = 1000.0;
    spec.name = "a";
    first = manager.submit(spec, 0.0);
    spec.name = "b";
    second = manager.submit(spec, 0.0);
    manager.schedule(0.0);
  }
};

TEST(NodeConservation, CleanManagerPasses) {
  ManagerFixture fixture;
  chk::Auditor auditor;
  auditor.check_manager(fixture.manager, 1.0);
  const chk::Report report = auditor.report();
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.conservation_audits, 1);
}

TEST(NodeConservation, SkewedIdleCounterIsCaught) {
  ManagerFixture fixture;
  chk::TestBackdoor::skew_idle_counter(fixture.manager, +1);
  chk::Auditor auditor;
  auditor.check_manager(fixture.manager, 33.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "node-conservation");
  EXPECT_DOUBLE_EQ(violation.sim_time, 33.0);
  EXPECT_NE(violation.message.find("idle counter"), std::string::npos);
  chk::TestBackdoor::skew_idle_counter(fixture.manager, -1);  // restore
}

TEST(NodeConservation, ForeignOwnerInTheTableIsCaught) {
  ManagerFixture fixture;
  // Hand an idle node to a job id the manager has never heard of.  The
  // idle recount diverges from the cached counter too, so assert on the
  // unknown-owner violation specifically.
  chk::TestBackdoor::set_node_owner(fixture.manager, 7, 424242);
  chk::Auditor auditor;
  auditor.check_manager(fixture.manager, 2.0);
  const chk::Report report = auditor.report();
  ASSERT_FALSE(report.ok());
  bool unknown_owner = false;
  for (const chk::Violation& violation : report.violations) {
    if (violation.job == 424242) {
      unknown_owner = true;
      EXPECT_EQ(violation.invariant, "node-conservation");
      EXPECT_NE(violation.message.find("does not know"), std::string::npos);
    }
  }
  EXPECT_TRUE(unknown_owner) << report.describe();
}

TEST(NodeConservation, JobListOwnerTableMismatchIsCaught) {
  ManagerFixture fixture;
  // The job claims a node the owner table says is idle.
  chk::TestBackdoor::claim_node(fixture.manager, fixture.first, 7);
  chk::Auditor auditor;
  auditor.check_manager(fixture.manager, 4.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "node-conservation");
  EXPECT_EQ(violation.job, fixture.first);
  EXPECT_NE(violation.message.find("node list"), std::string::npos);
}

TEST(NodeConservation, IdleDrainingNodeIsCaught) {
  ManagerFixture fixture;
  chk::TestBackdoor::set_node_draining(fixture.manager, 6, true);
  chk::Auditor auditor;
  auditor.check_manager(fixture.manager, 5.0);
  const chk::Report report = auditor.report();
  ASSERT_FALSE(report.ok());
  // Two symptoms of the same corruption: the idle node marked draining,
  // and the draining recount diverging from the cached counter.
  bool idle_draining = false;
  for (const chk::Violation& violation : report.violations) {
    EXPECT_EQ(violation.invariant, "node-conservation");
    if (violation.message.find("marked draining") != std::string::npos) {
      idle_draining = true;
    }
  }
  EXPECT_TRUE(idle_draining) << report.describe();
}

// --- federation identity -----------------------------------------------------

fed::FederationConfig two_members() {
  fed::ClusterSpec a;
  a.name = "a";
  a.rms.nodes = 4;
  fed::ClusterSpec b;
  b.name = "b";
  b.rms.nodes = 4;
  fed::FederationConfig config;
  config.clusters = {a, b};
  config.placement = fed::Placement::RoundRobin;
  return config;
}

rms::JobSpec small_job(const std::string& name) {
  rms::JobSpec spec;
  spec.name = name;
  spec.requested_nodes = 2;
  spec.min_nodes = 1;
  spec.max_nodes = 4;
  spec.time_limit = 1000.0;
  return spec;
}

TEST(FederationIdentity, PlacementInsideTheRangeIsClean) {
  fed::Federation federation(two_members());
  chk::Auditor auditor;
  obs::Hooks hooks;
  hooks.auditor = &auditor;
  federation.set_hooks(hooks);
  federation.submit(small_job("a"), 0.0);
  federation.submit(small_job("b"), 0.0);
  auditor.check_federation(federation, 1.0);
  const chk::Report report = auditor.report();
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.placement_checks, 2);
  EXPECT_EQ(report.federation_audits, 1);
}

TEST(FederationIdentity, RekeyedJobLeavesItsMembersRange) {
  fed::Federation federation(two_members());
  const JobId id = federation.submit(small_job("a"), 0.0);
  const int member = federation.cluster_of(id);
  // Push the job's id into the *other* member's stride range: the owner
  // still holds it, but routing now points elsewhere.
  const JobId foreign = id + fed::kClusterIdStride;
  chk::TestBackdoor::rekey_job(federation.manager(member), id, foreign);
  chk::Auditor auditor;
  auditor.check_federation(federation, 9.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "fed-id-range");
  EXPECT_EQ(violation.job, foreign);
  EXPECT_DOUBLE_EQ(violation.sim_time, 9.0);
  EXPECT_NE(violation.message.find("outside its range"), std::string::npos);
}

TEST(FederationIdentity, OutOfRangePlacementIsCaught) {
  chk::Auditor auditor;
  auditor.on_placement(5, 1, fed::kClusterIdStride, 2.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "fed-id-range");
  EXPECT_EQ(violation.job, 5);
}

// --- redistribution byte conservation ---------------------------------------

redist::Report clean_report() {
  redist::Report report;
  report.bytes_moved = 1024;
  report.bytes_total = 1024;
  report.transfers = 4;
  report.seconds = 0.5;
  report.lanes = 2;
  return report;
}

TEST(ByteConservation, CleanReportPasses) {
  chk::Auditor auditor;
  auditor.on_redist_report(clean_report(), 1024, 1.0);
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().describe();
}

TEST(ByteConservation, CheckpointMayMoveEveryByteTwice) {
  redist::Report report = clean_report();
  report.via_checkpoint = true;
  report.bytes_moved = 2048;  // write + read-back
  chk::Auditor auditor;
  auditor.on_redist_report(report, 1024, 1.0);
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().describe();
}

TEST(ByteConservation, UnaccountedBytesAreCaught) {
  chk::Auditor auditor;
  auditor.on_redist_report(clean_report(), 4096, 6.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "byte-conservation");
  EXPECT_DOUBLE_EQ(violation.sim_time, 6.0);
  EXPECT_NE(violation.message.find("registered"), std::string::npos);
}

TEST(ByteConservation, MovingMoreThanTheTotalIsCaught) {
  redist::Report report = clean_report();
  report.bytes_moved = 2048;  // 2x without the checkpoint excuse
  chk::Auditor auditor;
  auditor.on_redist_report(report, 1024, 1.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "byte-conservation");
  EXPECT_NE(violation.message.find("moved"), std::string::npos);
}

TEST(ByteConservation, MovedBytesWithoutTransfersAreCaught) {
  redist::Report report = clean_report();
  report.transfers = 0;
  chk::Auditor auditor;
  auditor.on_redist_report(report, 1024, 1.0);
  const chk::Violation violation = only_violation(auditor.report());
  EXPECT_EQ(violation.invariant, "byte-conservation");
  EXPECT_NE(violation.message.find("transfers"), std::string::npos);
}

TEST(ByteConservation, NanDurationAndZeroLanesAreCaught) {
  redist::Report report = clean_report();
  report.lanes = 0;
  report.seconds = std::numeric_limits<double>::quiet_NaN();
  chk::Auditor auditor;
  auditor.on_redist_report(report, 1024, 1.0);
  const chk::Report result = auditor.report();
  EXPECT_EQ(result.violations.size(), 2u) << result.describe();
}

// --- report / fail-fast ------------------------------------------------------

TEST(Report, JsonCarriesChecksViolationsAndProvenance) {
  chk::Auditor auditor;
  auditor.on_job_submitted(1, 0.0);
  auditor.on_job_started(2, 3.5);  // never submitted
  const std::string json = auditor.report().json();
  EXPECT_NE(json.find("\"report\":\"chk\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lifecycle_edges\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"invariant\":\"job-lifecycle\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"job\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"timestamp\""), std::string::npos) << json;
}

TEST(Report, DescribeListsEachViolation) {
  chk::Auditor auditor;
  auditor.on_job_started(2, 3.5);
  const std::string text = auditor.report().describe();
  EXPECT_NE(text.find("1 violation(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("job-lifecycle"), std::string::npos) << text;
  EXPECT_NE(text.find("[job 2]"), std::string::npos) << text;
}

TEST(Report, ViolationCapCountsInsteadOfDropping) {
  chk::Auditor auditor(chk::Auditor::Options{.max_violations = 2});
  for (JobId id = 1; id <= 5; ++id) auditor.on_job_started(id, 0.0);
  const chk::Report report = auditor.report();
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.dropped_violations, 3);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.describe().find("3 more (cap reached)"),
            std::string::npos);
}

TEST(FailFast, ThrowsAuditErrorWithTheViolation) {
  chk::Auditor auditor(chk::Auditor::Options{.fail_fast = true});
  try {
    auditor.on_job_started(77, 8.5);
    FAIL() << "expected AuditError";
  } catch (const chk::AuditError& error) {
    EXPECT_EQ(error.violation.invariant, "job-lifecycle");
    EXPECT_EQ(error.violation.job, 77);
    EXPECT_DOUBLE_EQ(error.violation.sim_time, 8.5);
    EXPECT_NE(std::string(error.what()).find("job-lifecycle"),
              std::string::npos);
  }
}

TEST(Auditor, ResetClearsStateAndCounts) {
  chk::Auditor auditor;
  auditor.on_job_started(1, 0.0);
  ASSERT_FALSE(auditor.ok());
  auditor.reset();
  EXPECT_TRUE(auditor.ok());
  EXPECT_EQ(auditor.report().total_checks(), 0);
  // The DFA forgot the adopted phase: resubmitting id 1 is legal again.
  auditor.on_job_submitted(1, 0.0);
  EXPECT_TRUE(auditor.ok());
}

// --- the headline property: attached == detached -----------------------------

/// The same FS workload test_obs.cpp uses for its digest-safety
/// properties: 20 flexible jobs on a 16-node cluster, 5 reconfiguring
/// points each.
std::string run_fs_digest(std::uint64_t seed, const obs::Hooks& hooks,
                          chk::Report* audit_report = nullptr) {
  wl::FeitelsonParams params;
  params.jobs = 20;
  params.max_size = 16;
  params.mean_interarrival = 15.0;
  params.max_runtime = 60.0 * 5;
  params.seed = seed;
  const auto workload = wl::generate_feitelson(params);

  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 16;
  config.hooks = hooks;
  drv::WorkloadDriver driver(engine, config);
  for (const auto& job : workload) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(5, job.size, job.runtime / 5, 16,
                                std::size_t(1) << 20);
    plan.submit_nodes = job.size;
    plan.flexible = true;
    driver.add(std::move(plan));
  }
  driver.run();

  std::ostringstream out;
  out.precision(17);
  const fed::Federation& federation = driver.federation();
  for (int c = 0; c < federation.cluster_count(); ++c) {
    for (const rms::Job* job : federation.manager(c).jobs()) {
      out << job->id << ':' << job->submit_time << ':' << job->start_time
          << ':' << job->end_time << '\n';
    }
  }
  if (audit_report != nullptr && hooks.auditor != nullptr) {
    *audit_report = hooks.auditor->report();
  }
  return out.str();
}

TEST(AuditorAttached, OutcomeDigestsMatchDetachedAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 2017ull}) {
    const std::string detached = run_fs_digest(seed, {});
    chk::Auditor auditor;
    chk::Report report;
    const std::string attached =
        run_fs_digest(seed, {.auditor = &auditor}, &report);
    EXPECT_EQ(attached, detached) << "seed " << seed;
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.describe();
    // The audit did real work on every axis the driver exercises.
    EXPECT_GT(report.lifecycle_edges, 0) << "seed " << seed;
    EXPECT_GT(report.event_dispatches, 0) << "seed " << seed;
    EXPECT_GT(report.conservation_audits, 0) << "seed " << seed;
  }
}

}  // namespace
