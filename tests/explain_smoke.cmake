# ctest smoke for the attribution pipeline: record a wait-attribution
# sidecar from a real run (sweep --attr-json over the bundled miniature
# SWF trace), then drive dmr_explain through its query surface — the
# summary, one concrete --job breakdown, --top-waits and
# --critical-path.  Invoked as
#   cmake -DSWEEP=<sweep binary> -DDMR_EXPLAIN=<dmr_explain binary>
#         -DSWF=<mini.swf> -P explain_smoke.cmake

set(attr_out "${CMAKE_CURRENT_BINARY_DIR}/explain_smoke_attr.json")
file(REMOVE "${attr_out}")

execute_process(COMMAND ${SWEEP} smoke --swf ${SWF} --attr-json ${attr_out}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep --attr-json exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT EXISTS "${attr_out}")
  message(FATAL_ERROR "sweep --attr-json did not write ${attr_out}")
endif()

# Summary mode: job count, makespan, cause table.
execute_process(COMMAND ${DMR_EXPLAIN} ${attr_out}
                OUTPUT_VARIABLE summary
                ERROR_VARIABLE serr
                RESULT_VARIABLE src)
if(NOT src EQUAL 0)
  message(FATAL_ERROR "dmr_explain summary failed (${src}):\n${serr}")
endif()
if(NOT summary MATCHES "wait seconds by cause")
  message(FATAL_ERROR "summary missing the cause table:\n${summary}")
endif()

# Pick the longest-waiting job from --top-waits, then demand a concrete
# named cause with seconds from --job on it.
execute_process(COMMAND ${DMR_EXPLAIN} ${attr_out} --top-waits 3
                OUTPUT_VARIABLE top
                RESULT_VARIABLE trc)
if(NOT trc EQUAL 0)
  message(FATAL_ERROR "dmr_explain --top-waits failed (${trc})")
endif()
string(REGEX MATCH "\n([0-9]+) " top_job "${top}")
set(top_job_id "${CMAKE_MATCH_1}")
if(NOT top_job_id)
  message(FATAL_ERROR "--top-waits listed no jobs:\n${top}")
endif()
execute_process(COMMAND ${DMR_EXPLAIN} ${attr_out} --job ${top_job_id}
                OUTPUT_VARIABLE job
                RESULT_VARIABLE jrc)
if(NOT jrc EQUAL 0)
  message(FATAL_ERROR "dmr_explain --job ${top_job_id} failed (${jrc})")
endif()
if(NOT job MATCHES "wait decomposition")
  message(FATAL_ERROR "--job output names no decomposition:\n${job}")
endif()
if(NOT job MATCHES "(insufficient-idle|easy-reservation|partition-pinned|draining-wait|shrink-pending|dependency)")
  message(FATAL_ERROR "--job output names no concrete cause:\n${job}")
endif()

execute_process(COMMAND ${DMR_EXPLAIN} ${attr_out} --critical-path
                OUTPUT_VARIABLE path
                RESULT_VARIABLE prc)
if(NOT prc EQUAL 0)
  message(FATAL_ERROR "dmr_explain --critical-path failed (${prc})")
endif()
if(NOT path MATCHES "makespan")
  message(FATAL_ERROR "--critical-path missing the makespan bound:\n${path}")
endif()

# --compare of a sidecar against itself: zero deltas, no moved jobs.
execute_process(COMMAND ${DMR_EXPLAIN} --compare ${attr_out} ${attr_out}
                OUTPUT_VARIABLE cmp
                RESULT_VARIABLE crc)
if(NOT crc EQUAL 0)
  message(FATAL_ERROR "dmr_explain --compare failed (${crc})")
endif()
if(NOT cmp MATCHES "no job's wait moved")
  message(FATAL_ERROR "self-compare reported phantom movement:\n${cmp}")
endif()

message(STATUS "explain_smoke: job ${top_job_id} explained; "
               "critical path and self-compare clean")
