// Outcome-digest harness shared by the calendar-queue equivalence tests.
//
// The engine rewrite (calendar event list + generation-tagged slots) must
// be *bit-identical* in outcome to the old priority-queue engine, not
// just "statistically similar".  These helpers reduce a full run to a
// text digest — every job's lifecycle timestamps at %.17g (round-trip
// exact for doubles) plus run-level counters — and hash it with FNV-1a
// so golden values captured from the pre-change engine can be embedded
// as constants and compared forever after.
//
// Three paths cover the three ways the engine gets driven:
//   - single-cluster batch (WorkloadDriver on one 20-node manager),
//   - 3-member federation (default member mix, LeastLoaded placement),
//   - resident service replay (streamed JobRequests + Lane::Sample
//     metrics cadence; the digest includes the sample JSON lines, so the
//     sampler's interleaving with state-changing events is pinned too).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/models.hpp"
#include "drv/workload_driver.hpp"
#include "fed/member_mix.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "wl/feitelson.hpp"

namespace dmr::digests {

inline std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Every job's lifecycle, one line each, in federation iteration order
/// (member-major, id-ascending — deterministic).
inline std::string job_table(const fed::Federation& federation) {
  std::string digest;
  char line[192];
  for (const rms::Job* job : federation.jobs()) {
    std::snprintf(line, sizeof(line), "%llu:%d:%.17g:%.17g:%.17g:%d:%d\n",
                  static_cast<unsigned long long>(job->id),
                  static_cast<int>(job->state), job->submit_time,
                  job->start_time, job->end_time, job->expansions,
                  job->shrinks);
    digest += line;
  }
  return digest;
}

inline std::string metrics_tail(const drv::WorkloadMetrics& metrics) {
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "makespan=%.17g util=%.17g expands=%lld shrinks=%lld "
                "checks=%lld\n",
                metrics.makespan, metrics.utilization,
                static_cast<long long>(metrics.expands),
                static_cast<long long>(metrics.shrinks),
                static_cast<long long>(metrics.checks));
  return tail;
}

inline std::vector<drv::JobPlan> fs_workload(std::uint64_t seed, int jobs,
                                             int max_size) {
  wl::FeitelsonParams params;
  params.jobs = jobs;
  params.max_size = max_size;
  params.mean_interarrival = 10.0;
  params.max_runtime = 300.0;
  params.seed = seed;
  std::vector<drv::JobPlan> plans;
  for (const auto& job : wl::generate_feitelson(params)) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(10, job.size, job.runtime / 10, max_size,
                                std::size_t(1) << 24);
    plan.submit_nodes = job.size;
    plan.flexible = true;
    plans.push_back(std::move(plan));
  }
  return plans;
}

/// Single 20-node cluster, 60 malleable Feitelson jobs.
inline std::uint64_t single_cluster_digest(std::uint64_t seed) {
  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 20;
  drv::WorkloadDriver driver(engine, config);
  for (auto& plan : fs_workload(seed, 60, 20)) driver.add(std::move(plan));
  const drv::WorkloadMetrics metrics = driver.run();
  return fnv1a(job_table(driver.federation()) + metrics_tail(metrics));
}

/// 3-member federation (default mix: alpha/beta/gamma), LeastLoaded.
inline std::uint64_t federation_digest(std::uint64_t seed) {
  sim::Engine engine;
  drv::DriverConfig config;
  const fed::MemberMix mix = fed::parse_member_mix(fed::kDefaultMemberMix);
  for (int c = 0; c < 3; ++c) {
    config.federation.clusters.push_back(fed::member_spec(mix, c));
  }
  config.federation.placement = fed::Placement::LeastLoaded;
  drv::WorkloadDriver driver(engine, config);
  for (auto& plan : fs_workload(seed, 60, 12)) driver.add(std::move(plan));
  const drv::WorkloadMetrics metrics = driver.run();
  return fnv1a(job_table(driver.federation()) + metrics_tail(metrics));
}

/// Resident-service replay: 40 streamed JobRequests into the 3-member
/// federation, drained on the sample cadence.  Sample JSON lines are
/// digested too — they pin the Lane::Sample interleaving.
inline std::uint64_t service_digest(std::uint64_t seed) {
  svc::ServiceConfig config;
  const fed::MemberMix mix = fed::parse_member_mix(fed::kDefaultMemberMix);
  for (int c = 0; c < 3; ++c) {
    config.driver.federation.clusters.push_back(fed::member_spec(mix, c));
  }
  config.driver.federation.placement = fed::Placement::LeastLoaded;
  config.sample_period = 40.0 + double(seed % 3) * 10.0;
  config.window = 4 * config.sample_period;
  svc::Service service(config);

  util::Rng rng(seed);
  double arrival = 0.0;
  for (long long tag = 0; tag < 40; ++tag) {
    svc::JobRequest request;
    request.tag = tag;
    request.arrival = arrival;
    request.nodes = static_cast<int>(rng.uniform_int(2, 8));
    request.min_nodes = std::max(1, request.nodes / 4);
    request.max_nodes = request.nodes * 2;
    request.runtime = rng.uniform(100.0, 400.0);
    request.steps = 5;
    request.flexible = rng.bernoulli(0.7);
    service.submit(request);
    arrival += rng.exponential_mean(30.0);
  }
  service.drain();

  std::string digest = job_table(service.driver().federation());
  digest += metrics_tail(service.metrics());
  for (const std::string& line : service.sample_lines()) {
    digest += line;
    digest += '\n';
  }
  return fnv1a(digest);
}

}  // namespace dmr::digests
