// Property tests of the block-distribution arithmetic and the
// redistribution planner: the plan must partition the index space for
// every (total, P, Q) combination, and executing it must reproduce the
// global array exactly.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "rt/redistribute.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr::rt;

TEST(BlockDistribution, BalancedCounts) {
  const BlockDistribution dist(10, 3);
  EXPECT_EQ(dist.count(0), 3u);  // floor(10r/3) boundaries: 0,3,6,10
  EXPECT_EQ(dist.count(1), 3u);
  EXPECT_EQ(dist.count(2), 4u);
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += dist.count(r);
  EXPECT_EQ(total, 10u);
}

TEST(BlockDistribution, CountsDifferByAtMostOne) {
  for (std::size_t total : {1u, 7u, 64u, 1000u}) {
    for (int parts : {1, 2, 3, 5, 8, 17}) {
      const BlockDistribution dist(total, parts);
      std::size_t lo = total, hi = 0;
      for (int r = 0; r < parts; ++r) {
        lo = std::min(lo, dist.count(r));
        hi = std::max(hi, dist.count(r));
      }
      EXPECT_LE(hi - lo, 1u) << "total=" << total << " parts=" << parts;
    }
  }
}

TEST(BlockDistribution, OwnerConsistentWithRanges) {
  const BlockDistribution dist(100, 7);
  for (std::size_t i = 0; i < 100; ++i) {
    const int owner = dist.owner(i);
    EXPECT_GE(i, dist.begin(owner));
    EXPECT_LT(i, dist.end(owner));
  }
}

TEST(BlockDistribution, Errors) {
  EXPECT_THROW(BlockDistribution(10, 0), std::invalid_argument);
  const BlockDistribution dist(10, 2);
  EXPECT_THROW(dist.owner(10), std::out_of_range);
  EXPECT_THROW(dist.begin(3), std::out_of_range);
}

TEST(Plan, EmptyForZeroElements) {
  EXPECT_TRUE(plan_redistribution(0, 4, 2).empty());
  EXPECT_TRUE(plan_redistribution(0, 1, 1).empty());
  EXPECT_EQ(migrated_elements(0, 4, 2), 0u);
}

TEST(Plan, RejectsNonPositiveParts) {
  // Geometry validation fires even when there is nothing to move.
  EXPECT_THROW(plan_redistribution(16, 0, 4), std::invalid_argument);
  EXPECT_THROW(plan_redistribution(16, 4, -1), std::invalid_argument);
  EXPECT_THROW(plan_redistribution(0, 0, 4), std::invalid_argument);
}

TEST(Plan, SinglePartBothDirections) {
  // 1 -> Q: the lone old rank feeds every new rank once, in order.
  const auto scatter = plan_redistribution(10, 1, 4);
  ASSERT_EQ(scatter.size(), 4u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < scatter.size(); ++i) {
    EXPECT_EQ(scatter[i].src_rank, 0);
    EXPECT_EQ(scatter[i].dst_rank, static_cast<int>(i));
    EXPECT_EQ(scatter[i].dst_offset, 0u);
    covered += scatter[i].count;
  }
  EXPECT_EQ(covered, 10u);
  // Q -> 1: the mirror merge.
  const auto gather = plan_redistribution(10, 4, 1);
  ASSERT_EQ(gather.size(), 4u);
  for (std::size_t i = 0; i < gather.size(); ++i) {
    EXPECT_EQ(gather[i].src_rank, static_cast<int>(i));
    EXPECT_EQ(gather[i].dst_rank, 0);
    EXPECT_EQ(gather[i].src_offset, 0u);
  }
  // 1 -> 1 self-copy (the same-size "migration" of Fig. 1's 48-48 case).
  const auto identity = plan_redistribution(10, 1, 1);
  ASSERT_EQ(identity.size(), 1u);
  EXPECT_EQ(identity[0].count, 10u);
}

TEST(Plan, TotalSmallerThanParts) {
  // 3 elements over 5 -> 2 ranks: empty old ranks contribute no
  // transfers, every transfer moves at least one element.
  const auto plan = plan_redistribution(3, 5, 2);
  const BlockDistribution old_dist(3, 5);
  std::size_t covered = 0;
  for (const Transfer& t : plan) {
    EXPECT_GT(t.count, 0u);
    EXPECT_GT(old_dist.count(t.src_rank), 0u);
    covered += t.count;
  }
  EXPECT_EQ(covered, 3u);
  // Growing into mostly-empty ranks is also valid.
  const auto grow = plan_redistribution(3, 2, 8);
  covered = 0;
  for (const Transfer& t : grow) {
    EXPECT_GT(t.count, 0u);
    covered += t.count;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(Plan, IdentityWhenLayoutUnchanged) {
  const auto plan = plan_redistribution(100, 4, 4);
  EXPECT_EQ(plan.size(), 4u);
  for (const Transfer& t : plan) {
    EXPECT_EQ(t.src_rank, t.dst_rank);
    EXPECT_EQ(t.src_offset, 0u);
    EXPECT_EQ(t.dst_offset, 0u);
  }
}

TEST(Plan, CleanSplitOnFactor2Expand) {
  // 8 elements, 2 -> 4 ranks: each old rank feeds exactly two new ranks.
  const auto plan = plan_redistribution(8, 2, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].src_rank, 0);
  EXPECT_EQ(plan[0].dst_rank, 0);
  EXPECT_EQ(plan[1].src_rank, 0);
  EXPECT_EQ(plan[1].dst_rank, 1);
  EXPECT_EQ(plan[2].src_rank, 1);
  EXPECT_EQ(plan[2].dst_rank, 2);
  EXPECT_EQ(plan[3].src_rank, 1);
  EXPECT_EQ(plan[3].dst_rank, 3);
}

// Parameterized partition property over a grid of (total, P, Q).
struct PlanCase {
  std::size_t total;
  int old_parts;
  int new_parts;
};

class PlanSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanSweep, TransfersPartitionTheIndexSpace) {
  const auto [total, old_parts, new_parts] = GetParam();
  const BlockDistribution old_dist(total, old_parts);
  const BlockDistribution new_dist(total, new_parts);
  const auto plan = plan_redistribution(total, old_parts, new_parts);
  std::vector<int> covered(total, 0);
  for (const Transfer& t : plan) {
    EXPECT_GT(t.count, 0u);
    for (std::size_t k = 0; k < t.count; ++k) {
      const std::size_t src_global = old_dist.begin(t.src_rank) +
                                     t.src_offset + k;
      const std::size_t dst_global = new_dist.begin(t.dst_rank) +
                                     t.dst_offset + k;
      EXPECT_EQ(src_global, dst_global);  // same element, new home
      ASSERT_LT(src_global, total);
      ++covered[src_global];
    }
  }
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(covered[i], 1) << "element " << i << " moved " << covered[i]
                             << " times";
  }
}

TEST_P(PlanSweep, PerRankViewsMatchFullPlan) {
  const auto [total, old_parts, new_parts] = GetParam();
  const auto plan = plan_redistribution(total, old_parts, new_parts);
  std::size_t from_total = 0, to_total = 0;
  for (int r = 0; r < old_parts; ++r) {
    for (const Transfer& t : transfers_from(plan, r)) {
      EXPECT_EQ(t.src_rank, r);
      from_total += t.count;
    }
  }
  for (int r = 0; r < new_parts; ++r) {
    for (const Transfer& t : transfers_to(plan, r)) {
      EXPECT_EQ(t.dst_rank, r);
      to_total += t.count;
    }
  }
  EXPECT_EQ(from_total, total);
  EXPECT_EQ(to_total, total);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlanSweep,
    ::testing::Values(PlanCase{16, 4, 8}, PlanCase{16, 8, 4},
                      PlanCase{16, 4, 4}, PlanCase{100, 7, 3},
                      PlanCase{100, 3, 7}, PlanCase{1, 1, 4},
                      PlanCase{5, 4, 2}, PlanCase{97, 13, 5},
                      PlanCase{64, 1, 16}, PlanCase{64, 16, 1},
                      PlanCase{33, 32, 3}, PlanCase{3, 5, 2},
                      PlanCase{2, 7, 9}, PlanCase{1, 1, 1},
                      PlanCase{6, 6, 6}));

TEST(MigratedElements, ZeroWhenUnchanged) {
  EXPECT_EQ(migrated_elements(1024, 4, 4), 0u);
}

TEST(MigratedElements, FactorTwoExpandMovesHalf) {
  // 2 -> 4: old rank 0 keeps its first half on new rank 0, sends second
  // half to rank 1; same for old rank 1 -> 2,3.  Elements staying on the
  // same rank index: new ranks 0 and... only rank 0's first half and
  // nothing else: ranks 1,2,3 all receive from a different source index.
  const std::size_t total = 1024;
  const std::size_t moved = migrated_elements(total, 2, 4);
  EXPECT_EQ(moved, total * 3 / 4);
}

TEST(MigratedElements, FractionGrowsWithImbalance) {
  EXPECT_LT(migrated_elements(1 << 16, 8, 16),
            migrated_elements(1 << 16, 8, 64));
}

TEST(SendRecvBlocks, RoundTripAcrossSpawn) {
  // End-to-end over the substrate: 3 ranks redistribute a 31-element
  // array to 5 spawned ranks; the gathered result must be the original.
  dmr::smpi::Universe universe;
  constexpr std::size_t kTotal = 31;
  constexpr int kOld = 3, kNew = 5;
  std::mutex mu;
  std::map<int, std::vector<double>> received;

  universe.launch("old", kOld, [&](dmr::smpi::Context& ctx) {
    const BlockDistribution dist(kTotal, kOld);
    std::vector<double> mine(dist.count(ctx.rank()));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<double>(dist.begin(ctx.rank()) + i) * 1.5;
    }
    const auto inter = ctx.spawn(ctx.world(), kNew,
                                 [&](dmr::smpi::Context& child) {
      const auto block = recv_blocks<double>(*child.parent(), child.rank(),
                                             kTotal, kOld, kNew, 5);
      std::lock_guard<std::mutex> lock(mu);
      received[child.rank()] = block;
    });
    send_blocks<double>(inter, ctx.rank(), std::span<const double>(mine),
                        kTotal, kOld, kNew, 5);
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty());

  const BlockDistribution new_dist(kTotal, kNew);
  for (int r = 0; r < kNew; ++r) {
    const auto& block = received[r];
    ASSERT_EQ(block.size(), new_dist.count(r)) << "rank " << r;
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_DOUBLE_EQ(block[i],
                       static_cast<double>(new_dist.begin(r) + i) * 1.5);
    }
  }
}

}  // namespace
