// Resident-service tests: the SPSC submission ring (FIFO order,
// QueueFull backpressure, cross-thread stress — the TSan target), the
// windowed histogram quantiles and expiry, streaming end-to-end runs,
// the snapshot round trip, the replay-determinism property
// (run(T1) == restore(snapshot(T0)).run(T1) field for field) and
// what-if fork divergence.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dmr/service.hpp"
#include "fed/member_mix.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmr;

svc::JobRequest request_of(long long tag, double arrival, int nodes = 4,
                           double runtime = 200.0) {
  svc::JobRequest request;
  request.tag = tag;
  request.arrival = arrival;
  request.nodes = nodes;
  request.min_nodes = 1;
  request.max_nodes = nodes * 2;
  request.runtime = runtime;
  request.steps = 5;
  return request;
}

// --- SubmitQueue -----------------------------------------------------------

TEST(SubmitQueue, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(svc::SubmitQueue(1).capacity(), 2u);
  EXPECT_EQ(svc::SubmitQueue(8).capacity(), 8u);
  EXPECT_EQ(svc::SubmitQueue(9).capacity(), 16u);
}

TEST(SubmitQueue, FifoOrder) {
  svc::SubmitQueue queue(8);
  for (long long tag = 0; tag < 5; ++tag) {
    EXPECT_EQ(queue.push(request_of(tag, double(tag))), svc::PushResult::Ok);
  }
  EXPECT_EQ(queue.size(), 5u);
  svc::JobRequest out;
  for (long long tag = 0; tag < 5; ++tag) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.tag, tag);
  }
  EXPECT_FALSE(queue.pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SubmitQueue, QueueFullBackpressureAndCounters) {
  svc::SubmitQueue queue(4);
  for (long long tag = 0; tag < 4; ++tag) {
    EXPECT_EQ(queue.push(request_of(tag, 0.0)), svc::PushResult::Ok);
  }
  // Full: the push is rejected and counted, nothing is dropped silently.
  EXPECT_EQ(queue.push(request_of(99, 0.0)), svc::PushResult::QueueFull);
  EXPECT_EQ(queue.push(request_of(99, 0.0)), svc::PushResult::QueueFull);
  EXPECT_EQ(queue.pushed(), 4u);
  EXPECT_EQ(queue.rejected_full(), 2u);
  // Draining one slot re-arms it for exactly one more push.
  svc::JobRequest out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.tag, 0);
  EXPECT_EQ(queue.push(request_of(4, 0.0)), svc::PushResult::Ok);
  EXPECT_EQ(queue.push(request_of(5, 0.0)), svc::PushResult::QueueFull);
  // FIFO across the wrap.
  for (long long tag = 1; tag <= 4; ++tag) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.tag, tag);
  }
  EXPECT_EQ(queue.popped(), 5u);
}

TEST(SubmitQueue, CrossThreadStressKeepsOrderAndLosesNothing) {
  // One producer thread, one consumer thread, a ring far smaller than
  // the transfer count so every slot wraps many times.  Run under TSan
  // (the dedicated CI job) this is the memory-ordering proof; under the
  // normal jobs it is a liveness and FIFO check.
  constexpr long long kCount = 20000;
  svc::SubmitQueue queue(16);
  std::vector<long long> seen;
  seen.reserve(kCount);
  std::thread consumer([&queue, &seen] {
    svc::JobRequest out;
    while (seen.size() < kCount) {
      if (queue.pop(out)) {
        seen.push_back(out.tag);
      } else {
        std::this_thread::yield();
      }
    }
  });
  long long rejected = 0;
  for (long long tag = 0; tag < kCount;) {
    if (queue.push(request_of(tag, double(tag))) == svc::PushResult::Ok) {
      ++tag;
    } else {
      ++rejected;
      std::this_thread::yield();
    }
  }
  consumer.join();
  ASSERT_EQ(seen.size(), std::size_t(kCount));
  for (long long tag = 0; tag < kCount; ++tag) {
    ASSERT_EQ(seen[std::size_t(tag)], tag);
  }
  EXPECT_EQ(queue.pushed(), std::uint64_t(kCount));
  EXPECT_EQ(queue.popped(), std::uint64_t(kCount));
  EXPECT_EQ(queue.rejected_full(), std::uint64_t(rejected));
}

// --- WindowedHistogram / MetricsWindow -------------------------------------

TEST(WindowedHistogram, QuantilesWithinBucketResolution) {
  svc::WindowedHistogram hist(4);
  for (int i = 1; i <= 1000; ++i) hist.add(double(i));  // 1..1000 s
  // One log-bucket is a factor of 10^(1/16) ~ 1.15; allow two.
  EXPECT_NEAR(hist.quantile(0.5), 500.0, 500.0 * 0.35);
  EXPECT_NEAR(hist.quantile(0.99), 990.0, 990.0 * 0.35);
  EXPECT_GE(hist.quantile(0.99), hist.quantile(0.5));
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_NEAR(hist.mean(), 500.5, 1e-6);
}

TEST(WindowedHistogram, EmptyWindowIsZeroNotNaN) {
  svc::WindowedHistogram hist(3);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_FALSE(std::isnan(hist.quantile(0.95)));
}

TEST(WindowedHistogram, RotationExpiresOldObservations) {
  svc::WindowedHistogram hist(2);  // window = 2 intervals
  hist.add(100.0);
  hist.rotate();
  EXPECT_EQ(hist.count(), 1u);  // still inside the window
  hist.add(1.0);
  hist.rotate();
  // The 100 s observation just retired; only the 1 s one remains.
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_LT(hist.quantile(0.99), 2.0);
  hist.rotate();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

TEST(MetricsWindow, RejectsPeriodWiderThanWindow) {
  EXPECT_THROW(svc::MetricsWindow(10.0, 20.0), std::invalid_argument);
  EXPECT_THROW(svc::MetricsWindow(10.0, 0.0), std::invalid_argument);
}

TEST(MetricsWindow, EmptySampleIsAllZeros) {
  svc::MetricsWindow window(300.0, 30.0);
  svc::MetricsSample sample;
  window.fill(sample);
  EXPECT_EQ(sample.completed_in_window, 0);
  EXPECT_DOUBLE_EQ(sample.wait_p99, 0.0);
  EXPECT_DOUBLE_EQ(sample.reconfigs_per_second, 0.0);
  EXPECT_FALSE(std::isnan(sample.wait_mean));
  EXPECT_FALSE(std::isnan(sample.response_p95));
}

// --- Service: streaming end-to-end -----------------------------------------

svc::ServiceConfig small_service(int nodes = 16) {
  svc::ServiceConfig config;
  config.driver.rms.nodes = nodes;
  config.sample_period = 50.0;
  config.window = 200.0;
  return config;
}

TEST(Service, StreamsJobsThroughTheRingToCompletion) {
  svc::Service service(small_service());
  for (long long tag = 0; tag < 20; ++tag) {
    ASSERT_EQ(service.queue().push(request_of(tag, 30.0 * double(tag))),
              svc::PushResult::Ok);
  }
  ASSERT_TRUE(service.drain());
  EXPECT_EQ(service.accepted(), 20);
  EXPECT_EQ(service.completed(), 20);
  EXPECT_TRUE(service.all_done());
  const drv::WorkloadMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.jobs, 20);
  EXPECT_GT(metrics.makespan, 0.0);
  EXPECT_GT(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0);
}

TEST(Service, SampleTimesAreMonotoneAndLinesMirrorRecords) {
  svc::Service service(small_service());
  for (long long tag = 0; tag < 10; ++tag) {
    service.submit(request_of(tag, 40.0 * double(tag)));
  }
  service.drain();
  const auto& samples = service.sample_records();
  ASSERT_GT(samples.size(), 2u);
  ASSERT_EQ(service.sample_lines().size(), samples.size());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(service.sample_lines()[i], samples[i].to_json());
    EXPECT_EQ(samples[i].to_json().front(), '{');
    EXPECT_EQ(samples[i].to_json().back(), '}');
    EXPECT_FALSE(std::isnan(samples[i].utilization));
    EXPECT_GE(samples[i].utilization, 0.0);
    EXPECT_LE(samples[i].utilization, 1.0 + 1e-9);
  }
  // Completions happened, so some window saw them.
  EXPECT_EQ(samples.back().completed_total, 10);
}

TEST(Service, RejectsStaleArrivalsAndCountsThem) {
  svc::Service service(small_service());
  service.submit(request_of(0, 10.0));
  service.advance_to(100.0);
  EXPECT_FALSE(service.submit(request_of(1, 50.0)));  // in the past
  EXPECT_TRUE(service.submit(request_of(2, 100.0)));  // now is fine
  EXPECT_EQ(service.rejected_stale(), 1);
  EXPECT_EQ(service.accepted(), 2);
  service.drain();
  EXPECT_EQ(service.completed(), 2);
}

TEST(Service, AdvanceIntoThePastThrows) {
  svc::Service service(small_service());
  service.advance_to(100.0);
  EXPECT_THROW(service.advance_to(50.0), std::invalid_argument);
}

// --- Snapshot / restore ----------------------------------------------------

TEST(Snapshot, SerializeDeserializeRoundTrip) {
  svc::Service service(small_service());
  util::Rng rng(3);
  for (long long tag = 0; tag < 12; ++tag) {
    svc::JobRequest request = request_of(tag, 25.0 * double(tag));
    request.flexible = rng.bernoulli(0.5);
    request.moldable = rng.bernoulli(0.3);
    service.submit(request);
  }
  service.advance_to(150.0);
  const svc::Snapshot before = svc::snapshot(service);
  const std::string wire = before.serialize();
  const svc::Snapshot after =
      svc::Snapshot::deserialize(wire, small_service());
  EXPECT_EQ(after.time, before.time);
  ASSERT_EQ(after.submissions.size(), before.submissions.size());
  for (std::size_t i = 0; i < after.submissions.size(); ++i) {
    const svc::JobRequest& a = after.submissions[i];
    const svc::JobRequest& b = before.submissions[i];
    EXPECT_EQ(a.tag, b.tag);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.min_nodes, b.min_nodes);
    EXPECT_EQ(a.max_nodes, b.max_nodes);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.flexible, b.flexible);
    EXPECT_EQ(a.moldable, b.moldable);
    EXPECT_EQ(a.state_bytes, b.state_bytes);
    EXPECT_EQ(a.partition, b.partition);
  }
}

TEST(Snapshot, DeserializeRejectsGarbage) {
  EXPECT_THROW(svc::Snapshot::deserialize("not a snapshot", small_service()),
               std::invalid_argument);
  EXPECT_THROW(
      svc::Snapshot::deserialize("dmrsvc-snapshot v1 time=5 n=3\n1 0",
                                 small_service()),
      std::invalid_argument);
}

// --- Determinism property: run(T1) == restore(snapshot(T0)).run(T1) --------

svc::ServiceConfig property_config(std::uint64_t seed, int clusters) {
  svc::ServiceConfig config;
  if (clusters > 1) {
    const fed::MemberMix mix = fed::parse_member_mix(fed::kDefaultMemberMix);
    for (int c = 0; c < clusters; ++c) {
      config.driver.federation.clusters.push_back(fed::member_spec(mix, c));
    }
    config.driver.federation.placement = fed::Placement::LeastLoaded;
  } else {
    config.driver.rms.nodes = 20;
  }
  config.sample_period = 40.0;
  config.window = 160.0;
  // Vary the cadence a little across seeds so the property is not an
  // artifact of one sampling grid.
  config.sample_period += double(seed % 3) * 10.0;
  config.window = 4 * config.sample_period;
  return config;
}

std::vector<svc::JobRequest> property_stream(std::uint64_t seed, int width) {
  util::Rng rng(seed);
  std::vector<svc::JobRequest> stream;
  double arrival = 0.0;
  for (long long tag = 0; tag < 40; ++tag) {
    svc::JobRequest request;
    request.tag = tag;
    request.arrival = arrival;
    request.nodes = static_cast<int>(rng.uniform_int(2, width));
    request.min_nodes = std::max(1, request.nodes / 4);
    request.max_nodes = request.nodes * 2;
    request.runtime = rng.uniform(100.0, 400.0);
    request.steps = 5;
    request.flexible = rng.bernoulli(0.7);
    stream.push_back(request);
    arrival += rng.exponential_mean(30.0);
  }
  return stream;
}

void expect_metrics_equal(const drv::WorkloadMetrics& a,
                          const drv::WorkloadMetrics& b) {
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.wait.mean, b.wait.mean);
  EXPECT_EQ(a.wait.max, b.wait.max);
  EXPECT_EQ(a.completion.mean, b.completion.mean);
  EXPECT_EQ(a.execution.mean, b.execution.mean);
  EXPECT_EQ(a.expands, b.expands);
  EXPECT_EQ(a.shrinks, b.shrinks);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.aborted_expands, b.aborted_expands);
  EXPECT_EQ(a.bytes_redistributed, b.bytes_redistributed);
  EXPECT_EQ(a.redistribution_seconds, b.redistribution_seconds);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].name, b.clusters[c].name);
    EXPECT_EQ(a.clusters[c].jobs, b.clusters[c].jobs);
    EXPECT_EQ(a.clusters[c].utilization, b.clusters[c].utilization);
    EXPECT_EQ(a.clusters[c].wait.mean, b.clusters[c].wait.mean);
  }
}

void expect_samples_equal(const svc::MetricsSample& a,
                          const svc::MetricsSample& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.completed_total, b.completed_total);
  EXPECT_EQ(a.completed_in_window, b.completed_in_window);
  EXPECT_EQ(a.reconfigs_in_window, b.reconfigs_in_window);
  EXPECT_EQ(a.queue_depth, b.queue_depth);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.wait_mean, b.wait_mean);
  EXPECT_EQ(a.wait_p50, b.wait_p50);
  EXPECT_EQ(a.wait_p95, b.wait_p95);
  EXPECT_EQ(a.wait_p99, b.wait_p99);
  EXPECT_EQ(a.response_p50, b.response_p50);
  EXPECT_EQ(a.response_p95, b.response_p95);
  EXPECT_EQ(a.response_p99, b.response_p99);
}

/// The replay-determinism property: a service run straight to T1 and a
/// service restored from its T0 snapshot then run to T1 agree field for
/// field — batch metrics, completion count, and every sample taken
/// after T0.
void check_replay_property(std::uint64_t seed, int clusters) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " clusters=" + std::to_string(clusters));
  const int width = clusters > 1 ? 12 : 16;
  const std::vector<svc::JobRequest> stream = property_stream(seed, width);

  svc::Service live(property_config(seed, clusters));
  for (const svc::JobRequest& request : stream) {
    ASSERT_TRUE(live.submit(request));
  }
  const double t0 = stream[stream.size() / 2].arrival;
  live.advance_to(t0);
  const svc::Snapshot snap = svc::snapshot(live);
  ASSERT_EQ(snap.time, t0);

  // Branch A: the live service continues to T1.
  const double t1 = t0 + 2000.0;
  live.advance_to(t1);

  // Branch B: a fresh service restored from the snapshot runs to T1.
  std::unique_ptr<svc::Service> replayed = svc::restore(snap);
  ASSERT_EQ(replayed->now(), t0);
  replayed->advance_to(t1);

  EXPECT_EQ(replayed->accepted(), live.accepted());
  EXPECT_EQ(replayed->completed(), live.completed());
  expect_metrics_equal(replayed->metrics(), live.metrics());
  // Every sample after the snapshot instant must match.  (Pre-snapshot
  // samples exist only on the live branch's timeline before T0 was
  // captured — both branches took them identically by construction.)
  const auto& live_samples = live.sample_records();
  const auto& replay_samples = replayed->sample_records();
  ASSERT_EQ(replay_samples.size(), live_samples.size());
  std::size_t compared = 0;
  for (std::size_t i = 0; i < live_samples.size(); ++i) {
    expect_samples_equal(replay_samples[i], live_samples[i]);
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(SnapshotProperty, ReplayMatchesLiveSingleCluster) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    check_replay_property(seed, 1);
  }
}

TEST(SnapshotProperty, ReplayMatchesLiveFederation) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    check_replay_property(seed, 3);
  }
}

// --- What-if forks ---------------------------------------------------------

TEST(Fork, AddingNodesMovesTheWindowedMetrics) {
  // Oversubscribe 8 nodes so a queue builds, then ask "what if the
  // cluster doubled?".  The variant must complete at least as many jobs
  // and its windowed p99 wait must improve (strictly, given the heavy
  // backlog).
  svc::ServiceConfig config;
  config.driver.rms.nodes = 8;
  config.sample_period = 100.0;
  config.window = 400.0;
  svc::Service service(config);
  util::Rng rng(17);
  double arrival = 0.0;
  for (long long tag = 0; tag < 30; ++tag) {
    svc::JobRequest request = request_of(tag, arrival, 4, 300.0);
    request.flexible = false;
    service.submit(request);
    arrival += rng.exponential_mean(20.0);
  }
  service.advance_to(600.0);
  const svc::Snapshot snap = svc::snapshot(service);

  svc::WhatIf whatif;
  whatif.label = "+8 nodes";
  whatif.add_nodes = 8;
  const svc::ForkReport report = svc::fork_and_run(snap, whatif, 4000.0);
  EXPECT_GE(report.delta_completed(), 0);
  EXPECT_LT(report.delta_wait_p99(), 0.0);
  EXPECT_NE(report.to_json().find("\"svc\":\"fork\""), std::string::npos);
  // The live instance was not disturbed by either branch.
  EXPECT_EQ(service.now(), snap.time);
}

TEST(Fork, HorizonMustLieBeyondTheSnapshot) {
  svc::Service service(small_service());
  service.submit(request_of(0, 0.0));
  service.advance_to(100.0);
  const svc::Snapshot snap = svc::snapshot(service);
  svc::WhatIf whatif;
  EXPECT_THROW(svc::fork_and_run(snap, whatif, 50.0), std::invalid_argument);
}

TEST(Fork, WhatIfDescribeNamesTheMutation) {
  svc::WhatIf whatif;
  whatif.label = "grow";
  whatif.add_nodes = 64;
  whatif.placement = fed::Placement::QueueDepth;
  whatif.shrink_boost = false;
  const std::string text = whatif.describe();
  EXPECT_NE(text.find("+64 nodes"), std::string::npos);
  EXPECT_NE(text.find("shrink_boost=off"), std::string::npos);
}

}  // namespace
