// Tests for the wait-attribution layer: the conservation contract (a
// started job's cause slices tile [submit, start] exactly), outcome
// digests byte-identical with the attributor attached vs detached, the
// sidecar JSON round trip, and the dmr_explain analytics (top waits,
// critical path, regression compare) the CLI fronts.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dmr/observe.hpp"
#include "dmr/service.hpp"
#include "dmr/simulation.hpp"

namespace {

using namespace dmr;

// --- workload helpers -------------------------------------------------------

std::string outcome_digest(const drv::WorkloadDriver& driver) {
  std::ostringstream out;
  out.precision(17);
  const fed::Federation& federation = driver.federation();
  for (int c = 0; c < federation.cluster_count(); ++c) {
    for (const rms::Job* job : federation.manager(c).jobs()) {
      out << job->id << ':' << job->submit_time << ':' << job->start_time
          << ':' << job->end_time << '\n';
    }
  }
  return out.str();
}

/// A contended FS workload: more submitted nodes than the cluster has,
/// so jobs genuinely queue and every BlockReason path can fire.
std::vector<drv::JobPlan> fs_plans(std::uint64_t seed, int jobs,
                                   int max_size,
                                   double mean_interarrival = 8.0) {
  wl::FeitelsonParams params;
  params.jobs = jobs;
  params.max_size = max_size;
  params.mean_interarrival = mean_interarrival;
  params.max_runtime = 60.0 * 5;
  params.seed = seed;
  std::vector<drv::JobPlan> plans;
  for (const auto& job : wl::generate_feitelson(params)) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(5, job.size, job.runtime / 5, max_size,
                                std::size_t(1) << 20);
    plan.submit_nodes = job.size;
    plan.flexible = true;
    plans.push_back(std::move(plan));
  }
  return plans;
}

struct RunOutcome {
  std::string digest;
  drv::WorkloadMetrics metrics;
};

RunOutcome run_single(std::uint64_t seed, const obs::Hooks& hooks,
                      int jobs = 24) {
  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 16;
  config.hooks = hooks;
  drv::WorkloadDriver driver(engine, config);
  for (auto& plan : fs_plans(seed, jobs, 16)) driver.add(std::move(plan));
  RunOutcome outcome;
  outcome.metrics = driver.run();
  outcome.digest = outcome_digest(driver);
  return outcome;
}

RunOutcome run_federated(std::uint64_t seed, const obs::Hooks& hooks,
                         int jobs = 36) {
  sim::Engine engine;
  drv::DriverConfig config;
  for (const char* name : {"a", "b", "c"}) {
    fed::ClusterSpec member;
    member.name = name;
    member.rms.nodes = 6;
    config.federation.clusters.push_back(member);
  }
  config.federation.placement = fed::Placement::LeastLoaded;
  config.hooks = hooks;
  drv::WorkloadDriver driver(engine, config);
  // Denser arrivals than the single-cluster run: three members absorb
  // bursts, so it takes more pressure before jobs genuinely queue.
  for (auto& plan : fs_plans(seed, jobs, 6, 3.0)) driver.add(std::move(plan));
  RunOutcome outcome;
  outcome.metrics = driver.run();
  outcome.digest = outcome_digest(driver);
  return outcome;
}

/// Conservation: every started job's slices sum *exactly* to its wait,
/// nothing remains unattributed, and the aggregate per-cause seconds sum
/// to the total wait.
void expect_conservation(const obs::WaitAttributor& attr) {
  double total_wait = 0.0;
  int waited = 0;
  for (const auto& [id, job] : attr.jobs()) {
    ASSERT_GE(job.start, 0.0) << "job " << id << " never started";
    // Exact, not approximate: the final slice absorbs the rounding.
    EXPECT_DOUBLE_EQ(job.attributed_seconds(), job.wait_seconds())
        << "job " << id;
    total_wait += job.wait_seconds();
    if (job.wait_seconds() > 0.0) {
      ++waited;
      ASSERT_FALSE(job.slices.empty()) << "job " << id;
      for (const auto& slice : job.slices) {
        EXPECT_NE(slice.cause, obs::BlockReason::kUnattributed)
            << "job " << id << " kept an undiagnosed slice";
      }
    }
  }
  ASSERT_GT(waited, 0) << "workload was uncontended; test proves nothing";
  const std::vector<double> totals = attr.cause_totals();
  double attributed = 0.0;
  for (const double seconds : totals) attributed += seconds;
  EXPECT_NEAR(attributed, total_wait, 1.0e-6);
  EXPECT_NEAR(totals[static_cast<std::size_t>(
                  obs::BlockReason::kUnattributed)],
              0.0, 1.0e-9);
}

// --- conservation, seed-swept ------------------------------------------------

TEST(WaitConservation, SingleClusterSlicesTileTheWaitExactly) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2017ULL}) {
    obs::WaitAttributor attr;
    const RunOutcome outcome = run_single(seed, {.attr = &attr});
    ASSERT_GT(outcome.metrics.jobs, 0);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_conservation(attr);
  }
}

TEST(WaitConservation, FederatedSlicesTileTheWaitExactly) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2017ULL}) {
    obs::WaitAttributor attr;
    const RunOutcome outcome = run_federated(seed, {.attr = &attr});
    ASSERT_GT(outcome.metrics.jobs, 0);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_conservation(attr);
    // Federated runs also carry placement provenance on every job.
    for (const auto& [id, job] : attr.jobs()) {
      EXPECT_GE(job.member, 0) << "job " << id;
      EXPECT_NE(job.placement.find("policy="), std::string::npos)
          << "job " << id;
    }
  }
}

TEST(WaitConservation, MetricsCarryTheDecomposition) {
  obs::WaitAttributor attr;
  const RunOutcome outcome = run_single(2017, {.attr = &attr});
  ASSERT_EQ(outcome.metrics.wait_causes.size(),
            static_cast<std::size_t>(obs::kBlockReasonCount));
  const std::vector<double> totals = attr.cause_totals();
  for (int r = 0; r < obs::kBlockReasonCount; ++r) {
    const auto& cause = outcome.metrics.wait_causes[std::size_t(r)];
    EXPECT_EQ(cause.key,
              obs::block_reason_key(static_cast<obs::BlockReason>(r)));
    EXPECT_DOUBLE_EQ(cause.seconds, totals[std::size_t(r)]);
  }
}

// --- determinism: attribution attached vs detached ---------------------------

TEST(WaitAttribution, AttachedAttributorNeverPerturbsOutcomes) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2017ULL}) {
    const RunOutcome detached = run_single(seed, {});
    obs::WaitAttributor attr;
    const RunOutcome attached = run_single(seed, {.attr = &attr});
    ASSERT_FALSE(detached.digest.empty());
    EXPECT_EQ(detached.digest, attached.digest) << "seed " << seed;

    const RunOutcome fed_detached = run_federated(seed, {});
    obs::WaitAttributor fed_attr;
    const RunOutcome fed_attached = run_federated(seed, {.attr = &fed_attr});
    EXPECT_EQ(fed_detached.digest, fed_attached.digest) << "seed " << seed;
  }
}

// --- the accumulator state machine -------------------------------------------

TEST(WaitAttributor, BackDatesFirstDiagnosisAndClosesOnChange) {
  obs::WaitAttributor attr;
  attr.on_job_submitted(1, "a", 0.0);
  // First diagnosis back-dates to the submit: the cause held all along.
  attr.on_job_blocked(1, 5.0, obs::BlockReason::kInsufficientIdle, 2);
  // Re-diagnosis with the same cause and blocker is a no-op.
  attr.on_job_blocked(1, 6.0, obs::BlockReason::kInsufficientIdle, 2);
  // A different cause closes the segment and opens the next.
  attr.on_job_blocked(1, 8.0, obs::BlockReason::kEasyReservation, 3);
  attr.on_job_started(1, 10.0);

  const auto& job = attr.jobs().at(1);
  ASSERT_EQ(job.slices.size(), 2u);
  EXPECT_EQ(job.slices[0].cause, obs::BlockReason::kInsufficientIdle);
  EXPECT_EQ(job.slices[0].blocker, 2);
  EXPECT_DOUBLE_EQ(job.slices[0].seconds, 8.0);
  EXPECT_EQ(job.slices[1].cause, obs::BlockReason::kEasyReservation);
  EXPECT_EQ(job.slices[1].blocker, 3);
  EXPECT_DOUBLE_EQ(job.slices[1].seconds, 2.0);
  EXPECT_DOUBLE_EQ(job.attributed_seconds(), job.wait_seconds());

  // Post-start reports are ignored (the wait is over).
  attr.on_job_blocked(1, 12.0, obs::BlockReason::kDependency, 9);
  EXPECT_EQ(attr.jobs().at(1).slices.size(), 2u);
}

TEST(WaitAttributor, RankedCausesAggregateAcrossSlices) {
  obs::WaitAttributor attr;
  attr.on_job_submitted(1, "a", 0.0);
  attr.on_job_blocked(1, 1.0, obs::BlockReason::kInsufficientIdle, 2);
  attr.on_job_blocked(1, 3.0, obs::BlockReason::kEasyReservation, 3);
  attr.on_job_blocked(1, 4.0, obs::BlockReason::kInsufficientIdle, 2);
  attr.on_job_started(1, 10.0);
  const auto ranked = obs::ranked_causes(attr.jobs().at(1));
  ASSERT_EQ(ranked.size(), 2u);
  // insufficient-idle accumulated [0,3) + [4,10) = 9 s, easy 1 s.
  EXPECT_EQ(ranked[0].cause, obs::BlockReason::kInsufficientIdle);
  EXPECT_DOUBLE_EQ(ranked[0].seconds, 9.0);
  EXPECT_EQ(ranked[1].cause, obs::BlockReason::kEasyReservation);
  EXPECT_DOUBLE_EQ(ranked[1].seconds, 1.0);
}

TEST(WaitAttributor, CancelledPendingJobClosesAtCancellation) {
  obs::WaitAttributor attr;
  attr.on_job_submitted(1, "a", 0.0);
  attr.on_job_blocked(1, 2.0, obs::BlockReason::kPartitionPinned, 0);
  attr.on_job_finished(1, 7.0);  // cancelled while pending
  const auto& job = attr.jobs().at(1);
  EXPECT_LT(job.start, 0.0);
  ASSERT_EQ(job.slices.size(), 1u);
  EXPECT_DOUBLE_EQ(job.slices[0].seconds, 7.0);
  EXPECT_DOUBLE_EQ(job.end, 7.0);
}

TEST(WaitAttributor, LiveCauseTotalsCountOpenSegments) {
  obs::WaitAttributor attr;
  attr.on_job_submitted(1, "a", 0.0);
  attr.on_job_blocked(1, 1.0, obs::BlockReason::kDrainingWait, 5);
  const auto live = attr.cause_totals(6.0);
  EXPECT_DOUBLE_EQ(
      live[static_cast<std::size_t>(obs::BlockReason::kDrainingWait)], 6.0);
  // Closed-only view sees nothing until the job starts.
  const auto closed = attr.cause_totals();
  EXPECT_DOUBLE_EQ(
      closed[static_cast<std::size_t>(obs::BlockReason::kDrainingWait)], 0.0);
}

// --- sidecar round trip ------------------------------------------------------

TEST(AttributionSidecar, JsonRoundTripsBitExactly) {
  obs::WaitAttributor attr;
  const RunOutcome outcome = run_federated(42, {.attr = &attr});
  ASSERT_GT(outcome.metrics.jobs, 0);

  std::string error;
  const obs::AttributionProfile parsed =
      obs::parse_attribution(attr.to_json(), error);
  ASSERT_TRUE(error.empty()) << error;
  const obs::AttributionProfile direct = obs::snapshot_attribution(attr);

  ASSERT_EQ(parsed.jobs.size(), direct.jobs.size());
  EXPECT_DOUBLE_EQ(parsed.makespan, direct.makespan);
  for (std::size_t j = 0; j < parsed.jobs.size(); ++j) {
    const obs::JobAttribution& a = parsed.jobs[j];
    const obs::JobAttribution& b = direct.jobs[j];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.member, b.member);
    EXPECT_EQ(a.placement, b.placement);
    // %.17g emission: doubles survive the round trip bit-exactly.
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    ASSERT_EQ(a.slices.size(), b.slices.size());
    for (std::size_t s = 0; s < a.slices.size(); ++s) {
      EXPECT_EQ(a.slices[s].cause, b.slices[s].cause);
      EXPECT_EQ(a.slices[s].blocker, b.slices[s].blocker);
      EXPECT_EQ(a.slices[s].seconds, b.slices[s].seconds);
    }
  }
  for (int r = 0; r < obs::kBlockReasonCount; ++r) {
    EXPECT_NEAR(parsed.cause_totals[std::size_t(r)],
                direct.cause_totals[std::size_t(r)], 1.0e-9);
  }
}

TEST(AttributionSidecar, EmissionIsDeterministicAndSortedKey) {
  obs::WaitAttributor attr;
  run_single(7, {.attr = &attr});
  const std::string once = attr.to_json();
  EXPECT_EQ(once, attr.to_json());
  // Top-level keys appear in sorted order.
  const std::size_t causes = once.find("\"causes\"");
  const std::size_t flag = once.find("\"dmr_attr\"");
  const std::size_t jobs = once.find("\"jobs\"");
  const std::size_t makespan = once.find("\"makespan\"");
  ASSERT_NE(causes, std::string::npos);
  EXPECT_LT(causes, flag);
  EXPECT_LT(flag, jobs);
  EXPECT_LT(jobs, makespan);
}

TEST(AttributionSidecar, RejectsForeignDocuments) {
  std::string error;
  obs::parse_attribution("{\"traceEvents\":[]}", error);
  EXPECT_NE(error.find("dmr_attr"), std::string::npos);
  obs::parse_attribution("not json", error);
  EXPECT_NE(error.find("parse error"), std::string::npos);
  obs::load_attribution_file("/nonexistent/attr.json", error);
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

// --- analytics ---------------------------------------------------------------

TEST(AttributionAnalytics, TopWaitsRanksLongestFirst) {
  obs::WaitAttributor attr;
  run_single(2017, {.attr = &attr});
  const obs::AttributionProfile profile = obs::snapshot_attribution(attr);
  const auto top = obs::top_waits(profile, 5);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1]->wait_seconds(), top[i]->wait_seconds());
  }
  // The front really is the maximum over all jobs.
  for (const obs::JobAttribution& job : profile.jobs) {
    EXPECT_LE(job.wait_seconds(), top.front()->wait_seconds());
  }
}

TEST(AttributionAnalytics, CriticalPathEndsAtTheMakespanJob) {
  obs::WaitAttributor attr;
  run_single(2017, {.attr = &attr});
  const obs::AttributionProfile profile = obs::snapshot_attribution(attr);
  const obs::CriticalPath path = obs::critical_path(profile);
  ASSERT_FALSE(path.chain.empty());
  EXPECT_EQ(path.edges.size(), path.chain.size() - 1);
  // The chain's tail is the job whose end time *is* the makespan.
  const obs::JobAttribution* tail = profile.find(path.chain.back());
  ASSERT_NE(tail, nullptr);
  EXPECT_DOUBLE_EQ(tail->end, profile.makespan);
  EXPECT_DOUBLE_EQ(path.makespan, profile.makespan);
  // Edges link consecutive chain entries with real waits.
  for (std::size_t e = 0; e < path.edges.size(); ++e) {
    EXPECT_EQ(path.edges[e].blocker, path.chain[e]);
    EXPECT_EQ(path.edges[e].job, path.chain[e + 1]);
    EXPECT_GT(path.edges[e].wait_seconds, 0.0);
    EXPECT_NE(path.edges[e].cause, obs::BlockReason::kUnattributed);
  }
  // The root waited on nothing the walk could chase further.
  const obs::JobAttribution* root = profile.find(path.chain.front());
  ASSERT_NE(root, nullptr);
  EXPECT_DOUBLE_EQ(path.root_submit, root->submit);
}

TEST(AttributionAnalytics, CompareFindsTheRegression) {
  // The identical workload on half the nodes: queueing can only get
  // worse, so B must regress against A.
  obs::WaitAttributor attr_a;
  obs::WaitAttributor attr_b;
  {
    sim::Engine engine;
    drv::DriverConfig config;
    config.rms.nodes = 16;
    config.hooks.attr = &attr_a;
    drv::WorkloadDriver driver(engine, config);
    for (auto& plan : fs_plans(2017, 24, 8)) driver.add(std::move(plan));
    driver.run();
  }
  {
    sim::Engine engine;
    drv::DriverConfig config;
    config.rms.nodes = 8;
    config.hooks.attr = &attr_b;
    drv::WorkloadDriver driver(engine, config);
    for (auto& plan : fs_plans(2017, 24, 8)) driver.add(std::move(plan));
    driver.run();
  }
  const obs::AttributionDelta delta = obs::compare_profiles(
      obs::snapshot_attribution(attr_a), obs::snapshot_attribution(attr_b));
  EXPECT_EQ(delta.jobs_a, 24);
  EXPECT_EQ(delta.jobs_b, 24);
  EXPECT_GT(delta.total_wait_b, delta.total_wait_a);
  ASSERT_FALSE(delta.moved_jobs.empty());
  // Worst regression first.
  for (std::size_t i = 1; i < delta.moved_jobs.size(); ++i) {
    const auto& prev = delta.moved_jobs[i - 1];
    const auto& cur = delta.moved_jobs[i];
    EXPECT_GE(prev.wait_b - prev.wait_a, cur.wait_b - cur.wait_a);
  }
}

// --- naming ------------------------------------------------------------------

TEST(BlockReason, NamesRoundTripAndKeysAreColumnSafe) {
  for (int r = 0; r < obs::kBlockReasonCount; ++r) {
    const auto reason = static_cast<obs::BlockReason>(r);
    EXPECT_EQ(obs::block_reason_from(obs::to_string(reason)), reason);
    const std::string key = obs::block_reason_key(reason);
    EXPECT_EQ(key.find('-'), std::string::npos) << key;
  }
  EXPECT_EQ(obs::block_reason_from("no-such-cause"),
            obs::BlockReason::kUnattributed);
}

// --- service samples ---------------------------------------------------------

TEST(ServiceAttribution, SamplesCarryWaitCauseColumns) {
  svc::ServiceConfig config;
  config.driver.rms.nodes = 4;
  config.sample_period = 30.0;
  config.window = 300.0;
  svc::Service service(config);
  ASSERT_NE(service.attribution(), nullptr);
  for (int i = 0; i < 8; ++i) {
    svc::JobRequest request;
    request.tag = i;
    request.arrival = 5.0 * i;
    request.nodes = 2;
    request.min_nodes = 1;
    request.max_nodes = 4;
    request.runtime = 240.0;
    request.steps = 5;
    request.flexible = true;
    ASSERT_TRUE(service.submit(request));
  }
  ASSERT_TRUE(service.drain(1.0e6));
  ASSERT_FALSE(service.sample_records().empty());
  const svc::MetricsSample& last = service.sample_records().back();
  ASSERT_EQ(last.cause_seconds.size(),
            static_cast<std::size_t>(obs::kBlockReasonCount));
  EXPECT_NE(service.sample_lines().back().find("\"wait_cause_"),
            std::string::npos);
  // The run was contended (8x2 nodes demanded of 4): some cause accrued.
  double total = 0.0;
  for (const double seconds : last.cause_seconds) total += seconds;
  EXPECT_GT(total, 0.0);
  // Detached service reports no columns.
  svc::ServiceConfig off = config;
  off.attribute_waits = false;
  svc::Service plain(off);
  EXPECT_EQ(plain.attribution(), nullptr);
}

}  // namespace
