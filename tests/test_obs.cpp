// Tests for the observability layer: the trace recorder's output
// survives the strict validator (and tampered documents do not), ring
// overflow is counted rather than silently truncated, the counter
// registry stays in parity with the legacy per-subsystem counters, and
// attaching tracing never perturbs simulated outcomes.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dmr/observe.hpp"
#include "dmr/service.hpp"
#include "dmr/simulation.hpp"

namespace {

using namespace dmr;

// --- shared workload helper -------------------------------------------------

struct RunOutcome {
  std::string digest;
  drv::WorkloadMetrics metrics;
};

/// Render every job's full-precision lifecycle: byte-identical across
/// runs iff the simulated outcomes are.
std::string outcome_digest(const drv::WorkloadDriver& driver) {
  std::ostringstream out;
  out.precision(17);
  const fed::Federation& federation = driver.federation();
  for (int c = 0; c < federation.cluster_count(); ++c) {
    for (const rms::Job* job : federation.manager(c).jobs()) {
      out << job->id << ':' << job->submit_time << ':' << job->start_time
          << ':' << job->end_time << '\n';
    }
  }
  return out.str();
}

/// A small FS workload (Feitelson sizes/arrivals, 5 reconfiguring
/// points) on a 16-node cluster, with `hooks` threaded through the
/// driver.  `configure` tweaks the driver before the run.
RunOutcome run_fs(std::uint64_t seed, const obs::Hooks& hooks,
                  int jobs = 20) {
  wl::FeitelsonParams params;
  params.jobs = jobs;
  params.max_size = 16;
  params.mean_interarrival = 15.0;
  params.max_runtime = 60.0 * 5;
  params.seed = seed;
  const auto workload = wl::generate_feitelson(params);

  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 16;
  config.hooks = hooks;
  drv::WorkloadDriver driver(engine, config);
  for (const auto& job : workload) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(5, job.size, job.runtime / 5, 16,
                                std::size_t(1) << 20);
    plan.submit_nodes = job.size;
    plan.flexible = true;
    driver.add(std::move(plan));
  }
  RunOutcome outcome;
  outcome.metrics = driver.run();
  outcome.digest = outcome_digest(driver);
  return outcome;
}

std::string wrap_events(const std::string& events) {
  return "{\"traceEvents\":[" + events + "]}";
}

// --- recorder -> validator round trip ---------------------------------------

TEST(TraceRecorder, RealRunRoundTripsThroughStrictValidator) {
  obs::TraceRecorder trace;
  const RunOutcome outcome = run_fs(2017, {.trace = &trace});
  ASSERT_GT(outcome.metrics.jobs, 0);
  ASSERT_GT(trace.recorded(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);

  const obs::TraceValidation validation =
      obs::validate_trace(trace.to_json());
  EXPECT_TRUE(validation.ok) << validation.describe();
  for (const auto& error : validation.errors) ADD_FAILURE() << error;
  // The validator counts non-metadata events: exactly the ring.
  EXPECT_EQ(validation.events, trace.recorded());
  // Timeline substance: schedule spans, per-job async spans, and the
  // global counter tracks (allocated/running/completed at least).
  EXPECT_GT(validation.spans, 0u);
  EXPECT_GT(validation.async_spans, 0u);
  EXPECT_GE(validation.counter_tracks, 3);
  EXPECT_EQ(validation.dropped, 0u);
}

TEST(TraceRecorder, EscapesHostileNamesAndArgs) {
  obs::TraceRecorder trace;
  trace.set_process_name(0, "quo\"te\\slash");
  trace.instant(0, 0, 1.0, "name \"with\" quotes",
                "\"k\":\"v\\\"esc\"");
  trace.counter(0, 2.0, "tab\tand\nnewline", 4.5);
  const obs::TraceValidation validation =
      obs::validate_trace(trace.to_json());
  EXPECT_TRUE(validation.ok) << validation.describe();
}

// --- tampered documents -----------------------------------------------------

TEST(TraceValidate, AcceptsMinimalBalancedTrace) {
  const auto validation = obs::validate_trace(wrap_events(
      R"({"ph":"B","ts":0,"pid":0,"tid":0,"name":"a"},)"
      R"({"ph":"E","ts":5,"pid":0,"tid":0})"));
  EXPECT_TRUE(validation.ok) << validation.describe();
  EXPECT_EQ(validation.spans, 1u);
}

TEST(TraceValidate, RejectsUnclosedSpan) {
  const auto validation = obs::validate_trace(
      wrap_events(R"({"ph":"B","ts":0,"pid":0,"tid":0,"name":"a"})"));
  EXPECT_FALSE(validation.ok);
}

TEST(TraceValidate, RejectsBackwardsTimestamps) {
  const auto validation = obs::validate_trace(wrap_events(
      R"({"ph":"B","ts":10,"pid":0,"tid":0,"name":"a"},)"
      R"({"ph":"E","ts":5,"pid":0,"tid":0})"));
  EXPECT_FALSE(validation.ok);
}

TEST(TraceValidate, RejectsCounterWithoutValue) {
  const auto validation = obs::validate_trace(
      wrap_events(R"({"ph":"C","ts":0,"pid":0,"tid":0,"name":"c"})"));
  EXPECT_FALSE(validation.ok);
}

TEST(TraceValidate, RejectsCompleteEventWithoutDuration) {
  const auto validation = obs::validate_trace(
      wrap_events(R"({"ph":"X","ts":0,"pid":0,"tid":0,"name":"x"})"));
  EXPECT_FALSE(validation.ok);
}

TEST(TraceValidate, RejectsUnbalancedAsyncScope) {
  const auto validation = obs::validate_trace(wrap_events(
      R"({"ph":"e","ts":0,"pid":0,"tid":0,"cat":"job","id":"0x1"})"));
  EXPECT_FALSE(validation.ok);
}

TEST(TraceValidate, RejectsMalformedJson) {
  EXPECT_FALSE(obs::validate_trace("this is not json").ok);
  EXPECT_FALSE(obs::validate_trace("{\"traceEvents\":42}").ok);
}

TEST(TraceValidate, RejectsZeroEventTimeline) {
  // Every structural rule passes vacuously on an empty timeline, so the
  // validator must refuse to call it valid.
  const auto validation = obs::validate_trace(wrap_events(""));
  EXPECT_FALSE(validation.ok);
  ASSERT_FALSE(validation.errors.empty());
  EXPECT_NE(validation.errors.front().find("no events"), std::string::npos);
}

TEST(TraceValidate, RejectsEmptyFile) {
  const std::string path = testing::TempDir() + "dmr_empty_trace.json";
  { std::ofstream touch(path); }
  const auto validation = obs::validate_trace_file(path);
  EXPECT_FALSE(validation.ok);
  ASSERT_FALSE(validation.errors.empty());
  EXPECT_NE(validation.errors.front().find("empty"), std::string::npos);
}

// --- ring overflow ----------------------------------------------------------

TEST(TraceRecorder, OverflowCountsDropsAndWritesThemBack) {
  obs::TraceRecorder trace(/*capacity=*/8);
  trace.async_begin(0, 0.0, "job", 1, "span");
  for (int i = 0; i < 32; ++i) {
    trace.counter(0, double(i), "depth", double(i));
  }
  trace.async_end(0, 40.0, "job", 1);  // dropped: the ring is full
  EXPECT_EQ(trace.recorded(), 8u);
  EXPECT_EQ(trace.dropped(), 26u);

  const obs::TraceValidation validation =
      obs::validate_trace(trace.to_json());
  // The loss is read back, and the unclosed async span it caused is
  // demoted to a warning — reported, but not a lie about completeness.
  EXPECT_EQ(validation.dropped, 26u);
  EXPECT_TRUE(validation.ok) << validation.describe();
  EXPECT_FALSE(validation.warnings.empty());
}

TEST(TraceRecorder, NeverSilentlyTruncates) {
  obs::TraceRecorder trace(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) trace.instant(0, 0, double(i), "i");
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos) << json;
  // The timeline itself flags the loss with a final instant event.
  EXPECT_NE(json.find("events dropped"), std::string::npos) << json;
}

// --- determinism: tracing on/off, seed-swept --------------------------------

TEST(TraceRecorder, AttachedObservabilityNeverPerturbsOutcomes) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2017ULL}) {
    const RunOutcome detached = run_fs(seed, {});
    const RunOutcome repeat = run_fs(seed, {});
    obs::TraceRecorder trace;
    obs::Profiler profiler;
    const RunOutcome attached =
        run_fs(seed, {.trace = &trace, .profiler = &profiler});
    ASSERT_FALSE(detached.digest.empty());
    EXPECT_EQ(detached.digest, repeat.digest) << "seed " << seed;
    EXPECT_EQ(detached.digest, attached.digest) << "seed " << seed;
    EXPECT_GT(profiler.events(), 0u);
  }
}

// --- registry ---------------------------------------------------------------

TEST(Registry, SetAddValueSnapshot) {
  obs::Registry registry;
  EXPECT_FALSE(registry.has("a"));
  EXPECT_DOUBLE_EQ(registry.value("a"), 0.0);
  registry.set("a", 2.0);
  registry.add("a", 3.0);
  registry.add("b.c", 1.5);
  EXPECT_DOUBLE_EQ(registry.value("a"), 5.0);
  EXPECT_TRUE(registry.has("b.c"));
  EXPECT_EQ(registry.size(), 2u);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a");  // name-sorted
  EXPECT_EQ(registry.snapshot_json(), "{\"a\":5,\"b.c\":1.500000}");
}

TEST(Registry, ParityWithLegacyCountersOnWorkloadRun) {
  wl::FeitelsonParams params;
  params.jobs = 30;
  params.max_size = 16;
  params.mean_interarrival = 10.0;
  params.max_runtime = 60.0 * 5;
  params.seed = 2017;
  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 16;
  drv::WorkloadDriver driver(engine, config);
  for (const auto& job : wl::generate_feitelson(params)) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(5, job.size, job.runtime / 5, 16,
                                std::size_t(1) << 20);
    plan.submit_nodes = job.size;
    plan.flexible = true;
    driver.add(std::move(plan));
  }
  const drv::WorkloadMetrics metrics = driver.run();
  ASSERT_GT(metrics.expands + metrics.shrinks, 0);

  obs::Registry registry;
  driver.fill_counters(registry);
  // The registry is a mirror, not a second source of truth: every entry
  // must equal the legacy counter it absorbs.
  EXPECT_EQ(registry.value("rms.expands"), double(metrics.expands));
  EXPECT_EQ(registry.value("rms.shrinks"), double(metrics.shrinks));
  EXPECT_EQ(registry.value("rms.checks"), double(metrics.checks));
  EXPECT_EQ(registry.value("rms.aborted_expands"),
            double(metrics.aborted_expands));
  EXPECT_EQ(registry.value("rms.schedule.requests"),
            double(metrics.schedule_requests));
  EXPECT_EQ(registry.value("rms.schedule.passes"),
            double(metrics.schedule_passes));
  EXPECT_EQ(registry.value("rms.schedule.passes_saved"),
            double(metrics.schedule_passes_saved));
  EXPECT_EQ(registry.value("drv.completed"), double(driver.completed()));
  EXPECT_EQ(registry.value("drv.redist.bytes"),
            double(metrics.bytes_redistributed));
  EXPECT_EQ(registry.value("fed.placements.local"), double(metrics.jobs));
  // Refilling overwrites in place instead of double counting.
  driver.fill_counters(registry);
  EXPECT_EQ(registry.value("rms.expands"), double(metrics.expands));
}

// --- profiler ---------------------------------------------------------------

TEST(Profiler, ReportFoldsAccumulatorsAndRss) {
  obs::Profiler profiler;
  profiler.add_events(1000);
  profiler.on_event();
  profiler.add_schedule(0.25);
  profiler.add_schedule(0.25);
  profiler.add_placement(0.1);
  profiler.add_redist(0.4);
  const obs::ProfileReport report = profiler.report(2.0, 10);
  EXPECT_EQ(report.events, 1001u);
  EXPECT_DOUBLE_EQ(report.events_per_second, 1001.0 / 2.0);
  EXPECT_DOUBLE_EQ(report.jobs_per_second, 5.0);
  EXPECT_EQ(report.schedule_passes, 2);
  EXPECT_NEAR(report.schedule_seconds, 0.5, 1e-6);
  EXPECT_NEAR(report.seconds_per_pass, 0.25, 1e-6);
  EXPECT_EQ(report.placements, 1);
  EXPECT_EQ(report.redists, 1);
  EXPECT_NEAR(report.engine_seconds, 2.0 - 0.5 - 0.1 - 0.4, 1e-6);
  EXPECT_GT(report.peak_rss_kb, 0) << "VmHWM should parse on Linux";
  const std::string row = report.json_fields();
  EXPECT_NE(row.find("\"events_per_second\":"), std::string::npos);
  EXPECT_NE(row.find("\"peak_rss_kb\":"), std::string::npos);
}

// --- provenance -------------------------------------------------------------

TEST(BuildInfo, ProvenanceFieldsAreRenderable) {
  EXPECT_NE(dmr::git_sha(), nullptr);
  EXPECT_GT(std::string(dmr::git_sha()).size(), 0u);
  const std::string stamp = dmr::iso8601_utc_now();
  ASSERT_EQ(stamp.size(), 20u) << stamp;  // 2026-01-02T03:04:05Z
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp.back(), 'Z');
  const std::string fields = dmr::bench_provenance_fields(4);
  EXPECT_NE(fields.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(fields.find("\"timestamp\":\""), std::string::npos);
  EXPECT_NE(fields.find("\"threads\":4"), std::string::npos);
  EXPECT_EQ(fields.find('{'), std::string::npos);  // brace-free splice
}

// --- service surface --------------------------------------------------------

TEST(ServiceCounters, RegistryAndSamplesExposeIngestTallies) {
  svc::ServiceConfig config;
  config.driver.rms.nodes = 16;
  config.sample_period = 30.0;
  config.window = 300.0;
  svc::Service service(config);
  for (int i = 0; i < 6; ++i) {
    svc::JobRequest request;
    request.tag = i;
    request.arrival = 10.0 * i;
    request.nodes = 2;
    request.min_nodes = 1;
    request.max_nodes = 4;
    request.runtime = 60.0;
    request.steps = 5;
    request.flexible = true;
    ASSERT_TRUE(service.submit(request));
  }
  ASSERT_TRUE(service.drain(1.0e6));

  const obs::Registry& counters = service.counters();
  EXPECT_EQ(counters.value("svc.accepted"), double(service.accepted()));
  EXPECT_EQ(counters.value("svc.rejected_stale"),
            double(service.rejected_stale()));
  EXPECT_EQ(counters.value("svc.ring.rejected_full"),
            double(service.queue().rejected_full()));
  EXPECT_EQ(counters.value("drv.completed"), double(service.completed()));
  EXPECT_EQ(counters.value("svc.samples"),
            double(service.sample_records().size()));

  // Samples mirror the registry's cumulative ring-overflow counter and
  // surface it in their JSON line.
  ASSERT_FALSE(service.sample_records().empty());
  const svc::MetricsSample& last = service.sample_records().back();
  EXPECT_EQ(last.rejected_full_cum,
            static_cast<long long>(service.queue().rejected_full()));
  EXPECT_NE(service.sample_lines().back().find("\"rejected_full_cum\":"),
            std::string::npos);
}

TEST(ServiceCounters, TraceHooksRecordRingAndUtilizationTracks) {
  obs::TraceRecorder trace;
  svc::ServiceConfig config;
  config.driver.rms.nodes = 16;
  config.driver.hooks.trace = &trace;
  config.sample_period = 30.0;
  config.window = 300.0;
  svc::Service service(config);
  svc::JobRequest request;
  request.arrival = 0.0;
  request.nodes = 2;
  request.min_nodes = 1;
  request.max_nodes = 4;
  request.runtime = 120.0;
  request.steps = 5;
  request.flexible = true;
  ASSERT_TRUE(service.submit(request));
  ASSERT_TRUE(service.drain(1.0e6));

  const std::string json = trace.to_json();
  EXPECT_NE(json.find("ring depth"), std::string::npos);
  EXPECT_NE(json.find("utilization"), std::string::npos);
  const obs::TraceValidation validation = obs::validate_trace(json);
  EXPECT_TRUE(validation.ok) << validation.describe();
}

}  // namespace
