// Cross-module integration tests: multiple real malleable jobs sharing
// one resource manager and one thread universe, exercising the complete
// negotiate -> spawn -> redistribute -> retire pipeline concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#include "apps/flexible_sleep.hpp"
#include "ckpt/cr_runner.hpp"
#include "dmr/manager.hpp"
#include "dmr/reconfig_point.hpp"
#include "dmr/session.hpp"
#include "rt/malleable_app.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dmr::JobSpec flex_spec(const std::string& name, int nodes, int max) {
  dmr::JobSpec spec;
  spec.name = name;
  spec.requested_nodes = nodes;
  spec.min_nodes = 1;
  spec.max_nodes = max;
  spec.flexible = true;
  spec.time_limit = 60.0;
  return spec;
}

TEST(Integration, SecondJobExpandsIntoNodesFreedByFirst) {
  // A (4 nodes, short) and B (4 nodes, long) fill the 8-node cluster.
  // When A completes, B's next reconfiguring point finds the queue empty
  // and 4 idle nodes: it must expand to 8.
  dmr::Manager manager(dmr::RmsConfig{.nodes = 8, .scheduler = {}});
  auto connection =
      std::make_shared<dmr::Connection>(manager, [] { return wall_now(); });

  dmr::Session session_a(connection);
  dmr::Session session_b(connection);
  session_a.submit(flex_spec("A", 4, 4));
  session_b.submit(flex_spec("B", 4, 8));
  connection->schedule();
  ASSERT_TRUE(session_a.info().running());
  ASSERT_TRUE(session_b.info().running());

  dmr::Request req_a{.min_procs = 1, .max_procs = 4, .factor = 2,
                        .preferred = 0};
  dmr::Request req_b{.min_procs = 1, .max_procs = 8, .factor = 2,
                        .preferred = 0};
  auto runtime_a = std::make_shared<dmr::ReconfigPoint>(session_a, req_a);
  auto runtime_b = std::make_shared<dmr::ReconfigPoint>(session_b, req_b);

  apps::FlexibleSleepConfig fs_a;
  fs_a.array_elements = 32;
  apps::FlexibleSleepConfig fs_b;
  fs_b.array_elements = 64;
  fs_b.work_seconds = 0.02;  // ~5 ms steps keep B alive past A's exit

  smpi::Universe universe;
  rt::MalleableConfig config_a;
  config_a.total_steps = 2;
  auto future_a = rt::start_malleable(
      universe, runtime_a, config_a,
      [fs_a] { return std::make_unique<apps::FlexibleSleepState>(fs_a); },
      4);
  rt::MalleableConfig config_b;
  config_b.total_steps = 60;
  auto future_b = rt::start_malleable(
      universe, runtime_b, config_b,
      [fs_b] { return std::make_unique<apps::FlexibleSleepState>(fs_b); },
      4);

  const auto report_a = future_a.get();
  const auto report_b = future_b.get();
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];

  EXPECT_EQ(report_a.final_size, 4);  // A is capped at 4, never grows
  EXPECT_EQ(report_b.final_size, 8);  // B expanded into A's nodes
  EXPECT_GE(manager.counters().expands, 1);
  EXPECT_TRUE(manager.all_done());
  EXPECT_EQ(manager.idle_nodes(), 8);
}

TEST(Integration, ShrinkHandsNodesToQueuedMalleableJob) {
  // A holds the whole cluster; B queues.  A's reconfiguring point shrinks
  // it (wide optimization, boosting B), B starts on the freed nodes, and
  // both finish.
  dmr::Manager manager(dmr::RmsConfig{.nodes = 8, .scheduler = {}});
  auto connection =
      std::make_shared<dmr::Connection>(manager, [] { return wall_now(); });

  dmr::Session session_a(connection);
  session_a.submit(flex_spec("A", 8, 8));
  connection->schedule();
  dmr::Session session_b(connection);
  session_b.submit(flex_spec("B", 4, 4));
  connection->schedule();
  ASSERT_TRUE(session_b.info().pending());

  dmr::Request req{.min_procs = 1, .max_procs = 8, .factor = 2,
                      .preferred = 0};
  auto runtime_a = std::make_shared<dmr::ReconfigPoint>(session_a, req);

  apps::FlexibleSleepConfig fs;
  fs.array_elements = 48;
  fs.work_seconds = 0.01;

  smpi::Universe universe;
  rt::MalleableConfig config_a;
  config_a.total_steps = 8;
  auto future_a = rt::start_malleable(
      universe, runtime_a, config_a,
      [fs] { return std::make_unique<apps::FlexibleSleepState>(fs); }, 8);

  // B's payload launches once the manager reports it running.
  std::atomic<bool> b_started{false};
  std::future<rt::RunReport> future_b;
  for (int spin = 0; spin < 2000; ++spin) {
    if (session_b.info().running()) {
      b_started = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(b_started.load()) << "queued job never started";
  auto runtime_b = std::make_shared<dmr::ReconfigPoint>(session_b, req);
  rt::MalleableConfig config_b;
  config_b.total_steps = 2;
  future_b = rt::start_malleable(
      universe, runtime_b, config_b,
      [fs] { return std::make_unique<apps::FlexibleSleepState>(fs); },
      session_b.info().allocated);

  const auto report_a = future_a.get();
  const auto report_b = future_b.get();
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];

  EXPECT_GE(manager.counters().shrinks, 1);
  EXPECT_LE(report_a.final_size, 8);
  EXPECT_GE(report_b.final_size, 1);
  EXPECT_TRUE(manager.all_done());
  EXPECT_EQ(manager.idle_nodes(), 8);
}

TEST(Integration, InhibitedJobNeverContactsRmsAgain) {
  dmr::Manager manager(dmr::RmsConfig{.nodes = 8, .scheduler = {}});
  dmr::Session session(manager, [] { return wall_now(); });
  session.submit(flex_spec("quiet", 4, 8));
  session.schedule();

  dmr::Request req{.min_procs = 1, .max_procs = 8, .factor = 2,
                      .preferred = 4};
  // Preferred == current and a giant inhibitor: the first check returns
  // "no action" (queue empty -> it may expand; use preferred=4... the
  // empty-queue branch expands).  Use max=4 to pin it.
  req.max_procs = 4;
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, req,
                                                      /*inhibitor=*/3600.0);

  apps::FlexibleSleepConfig fs;
  fs.array_elements = 16;
  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 10;
  const auto report = rt::run_malleable(
      universe, runtime, config,
      [fs] { return std::make_unique<apps::FlexibleSleepState>(fs); }, 4);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(report.final_size, 4);
  EXPECT_LE(manager.counters().checks, 1);  // only the first negotiation
  EXPECT_TRUE(manager.all_done());
}

TEST(Integration, CheckpointAndDmrProduceIdenticalState) {
  // The same FS run through the two malleability mechanisms must land on
  // the same global array (C/R is slower, not different).
  apps::FlexibleSleepConfig fs;
  fs.array_elements = 40;
  auto forced = [](int step, int size) -> std::optional<dmr::ResizeDecision> {
    if (step == 2 && size == 4) {
      dmr::ResizeDecision d;
      d.action = dmr::Action::Shrink;
      d.new_size = 2;
      return d;
    }
    return std::nullopt;
  };

  // DMR path.
  std::vector<double> dmr_final;
  {
    struct Capture final : public rt::AppState {
      apps::FlexibleSleepState inner;
      std::vector<double>* out;
      std::mutex* mu;
      Capture(apps::FlexibleSleepConfig c, std::vector<double>* o,
              std::mutex* m)
          : inner(c), out(o), mu(m) {}
      void init(int r, int n) override { inner.init(r, n); }
      void compute_step(const smpi::Comm& w, int s) override {
        inner.compute_step(w, s);
        if (s == 5) {
          const auto all =
              w.allgatherv(std::span<const double>(inner.local()));
          if (w.rank() == 0) {
            std::lock_guard<std::mutex> lock(*mu);
            *out = all;
          }
        }
      }
      void send_state(const smpi::Comm& i, int r, int o, int n) override {
        inner.send_state(i, r, o, n);
      }
      void recv_state(const smpi::Comm& p, int r, int o, int n) override {
        inner.recv_state(p, r, o, n);
      }
      std::vector<std::byte> serialize_global(const smpi::Comm& w) override {
        return inner.serialize_global(w);
      }
      void deserialize_global(const smpi::Comm& w,
                              std::span<const std::byte> b) override {
        inner.deserialize_global(w, b);
      }
    };
    std::mutex mu;
    smpi::Universe universe;
    rt::MalleableConfig config;
    config.total_steps = 6;
    config.forced_decision = forced;
    rt::run_malleable(universe, nullptr, config,
                      [&] {
                        return std::make_unique<Capture>(fs, &dmr_final, &mu);
                      },
                      4);
    universe.await_all();
    ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  }

  // C/R path: same resize script through checkpoint files.
  std::vector<double> cr_final;
  {
    const auto dir = std::filesystem::temp_directory_path() /
                     "dmr_integration_cr";
    std::filesystem::remove_all(dir);
    ckpt::CheckpointStore store({dir, false});
    smpi::Universe universe;
    rt::MalleableConfig config;
    config.total_steps = 6;
    config.forced_decision = forced;
    // Reuse FS directly and read the checkpoint after the run: simpler —
    // run, then gather by re-running serialize via a capture state.
    struct Capture final : public rt::AppState {
      apps::FlexibleSleepState inner;
      std::vector<double>* out;
      std::mutex* mu;
      Capture(apps::FlexibleSleepConfig c, std::vector<double>* o,
              std::mutex* m)
          : inner(c), out(o), mu(m) {}
      void init(int r, int n) override { inner.init(r, n); }
      void compute_step(const smpi::Comm& w, int s) override {
        inner.compute_step(w, s);
        if (s == 5) {
          const auto all =
              w.allgatherv(std::span<const double>(inner.local()));
          if (w.rank() == 0) {
            std::lock_guard<std::mutex> lock(*mu);
            *out = all;
          }
        }
      }
      void send_state(const smpi::Comm& i, int r, int o, int n) override {
        inner.send_state(i, r, o, n);
      }
      void recv_state(const smpi::Comm& p, int r, int o, int n) override {
        inner.recv_state(p, r, o, n);
      }
      std::vector<std::byte> serialize_global(const smpi::Comm& w) override {
        return inner.serialize_global(w);
      }
      void deserialize_global(const smpi::Comm& w,
                              std::span<const std::byte> b) override {
        inner.deserialize_global(w, b);
      }
    };
    std::mutex mu;
    ckpt::run_checkpoint_restart(
        universe, config,
        [&] { return std::make_unique<Capture>(fs, &cr_final, &mu); }, 4,
        store);
    universe.await_all();
    ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
    std::filesystem::remove_all(dir);
  }

  ASSERT_EQ(dmr_final.size(), cr_final.size());
  for (std::size_t i = 0; i < dmr_final.size(); ++i) {
    EXPECT_DOUBLE_EQ(dmr_final[i], cr_final[i]) << "element " << i;
  }
}

}  // namespace
