// End-to-end workload-driver tests: the cost model, small fixed vs
// flexible workloads (the headline "flexible wins" property), async mode,
// heterogeneous mixes and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "apps/models.hpp"
#include "drv/workload_driver.hpp"
#include "wl/feitelson.hpp"

namespace {

using namespace dmr;
using drv::CostModel;
using drv::DriverConfig;
using drv::JobPlan;
using drv::WorkloadDriver;
using drv::WorkloadMetrics;

TEST(Metrics, GainPercent) {
  EXPECT_DOUBLE_EQ(drv::gain_percent(100.0, 60.0), 40.0);
  EXPECT_DOUBLE_EQ(drv::gain_percent(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(drv::gain_percent(0.0, 50.0), 0.0);  // guarded
}

TEST(Metrics, DescribeContainsKeyNumbers) {
  drv::WorkloadMetrics metrics;
  metrics.jobs = 7;
  metrics.makespan = 123.0;
  metrics.expands = 3;
  metrics.shrinks = 4;
  metrics.bytes_redistributed = std::size_t(6) << 20;
  metrics.redistribution_seconds = 1.5;
  const std::string text = drv::describe(metrics);
  EXPECT_NE(text.find("jobs=7"), std::string::npos);
  EXPECT_NE(text.find("123"), std::string::npos);
  EXPECT_NE(text.find("expands=3"), std::string::npos);
  EXPECT_NE(text.find("redistributed=6MB"), std::string::npos);
}

TEST(CostModel, DegenerateSingleRank) {
  EXPECT_DOUBLE_EQ(CostModel::migrated_fraction(1, 1), 0.0);
  CostModel cost;
  // No data: only the spawn/protocol terms remain.
  EXPECT_NEAR(cost.reconfigure_seconds(0, 4, 8),
              cost.spawn_latency + cost.per_proc_spawn * 8, 1e-12);
}

TEST(CostModel, MigratedFractionShape) {
  EXPECT_DOUBLE_EQ(CostModel::migrated_fraction(4, 4), 0.0);
  EXPECT_NEAR(CostModel::migrated_fraction(2, 4), 0.75, 1e-6);
  EXPECT_GT(CostModel::migrated_fraction(8, 32),
            CostModel::migrated_fraction(8, 16) - 1e-9);
}

TEST(CostModel, CrMuchSlowerThanDmr) {
  CostModel dmr_cost;
  CostModel cr_cost;
  cr_cost.use_checkpoint_restart = true;
  const std::size_t gigabyte = std::size_t(1) << 30;
  const double dmr_s = dmr_cost.reconfigure_seconds(gigabyte, 48, 24);
  const double cr_s = cr_cost.reconfigure_seconds(gigabyte, 48, 24);
  EXPECT_GT(cr_s / dmr_s, 10.0);  // the Fig. 1 gap
}

TEST(CostModel, NodeSpeedScalesNetworkTransferOnly) {
  CostModel cost;
  const std::size_t bytes = std::size_t(1) << 30;
  const double reference = cost.movement(bytes, 8, 16).seconds;
  // Half-speed nodes drive the network at half rate: twice the seconds.
  EXPECT_NEAR(cost.movement(bytes, 8, 16, 0.5).seconds, 2.0 * reference,
              1e-9);
  // Speed 1.0 (and the non-positive fallback) reproduce the reference.
  EXPECT_DOUBLE_EQ(cost.movement(bytes, 8, 16, 1.0).seconds, reference);
  EXPECT_DOUBLE_EQ(cost.movement(bytes, 8, 16, 0.0).seconds, reference);
  // The checkpoint route prices the shared filesystem, not the nodes.
  CostModel cr;
  cr.use_checkpoint_restart = true;
  EXPECT_DOUBLE_EQ(cr.movement(bytes, 8, 16, 0.5).seconds,
                   cr.movement(bytes, 8, 16).seconds);
  // Calibration from an observed report composes with the speed factor.
  CostModel calibrated;
  redist::Report observed;
  observed.bytes_moved = std::size_t(1) << 28;
  observed.bytes_total = observed.bytes_moved;
  observed.transfers = 16;
  observed.lanes = 8;
  observed.seconds = 0.5;
  calibrated.observe(observed);
  const double cal = calibrated.movement(bytes, 8, 16).seconds;
  EXPECT_NEAR(calibrated.movement(bytes, 8, 16, 0.5).seconds, 2.0 * cal,
              1e-9);
}

TEST(CostModel, MoreLanesFasterRedistribution) {
  // Same shrink ratio, 8x the lanes: the data-movement term must shrink
  // even though the migrated fraction is slightly larger.
  CostModel cost;
  const std::size_t bytes = std::size_t(1) << 30;
  EXPECT_LT(cost.reconfigure_seconds(bytes, 16, 8),
            cost.reconfigure_seconds(bytes, 2, 1));
}

JobPlan fs_plan(double arrival, int size, double runtime, int steps,
                bool flexible, int max_size = 20) {
  JobPlan plan;
  plan.arrival = arrival;
  plan.model = apps::fs_model(steps, size, runtime / steps, max_size,
                              std::size_t(1) << 20);
  plan.submit_nodes = size;
  plan.flexible = flexible;
  return plan;
}

DriverConfig small_config(int nodes) {
  DriverConfig config;
  config.rms.nodes = nodes;
  return config;
}

TEST(Driver, SingleJobRunsToCompletion) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(0.0, 4, 40.0, 2, /*flexible=*/false));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 1);
  // 2 steps x 20 s at the submitted size.
  EXPECT_NEAR(metrics.makespan, 40.0, 1e-9);
  EXPECT_NEAR(metrics.execution.mean, 40.0, 1e-9);
  EXPECT_NEAR(metrics.wait.mean, 0.0, 1e-9);
}

TEST(Driver, FlexibleLoneJobExpandsAndFinishesFaster) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(0.0, 2, 100.0, 10, /*flexible=*/true, 8));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 1);
  EXPECT_GE(metrics.expands, 1);
  // Perfect scaling: expanding 2 -> 8 cuts step time 4x; even with the
  // reconfiguration overhead the makespan must beat the fixed 100 s.
  EXPECT_LT(metrics.makespan, 70.0);
  // Every resize records its modeled redist::Report into the metrics.
  EXPECT_GT(metrics.bytes_redistributed, 0u);
  EXPECT_GT(metrics.redistribution_seconds, 0.0);
}

TEST(Driver, RigidWorkloadMovesNoBytes) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(0.0, 4, 40.0, 2, /*flexible=*/false));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_EQ(metrics.bytes_redistributed, 0u);
  EXPECT_DOUBLE_EQ(metrics.redistribution_seconds, 0.0);
}

TEST(Driver, QueuedJobTriggersShrinkOfRunningJob) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  // Flexible hog takes all 8 nodes; a rigid 4-node job arrives later.
  driver.add(fs_plan(0.0, 8, 200.0, 20, /*flexible=*/true, 8));
  driver.add(fs_plan(10.0, 4, 40.0, 2, /*flexible=*/false));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 2);
  EXPECT_GE(metrics.shrinks, 1);
  // The rigid job must not wait for the hog's full 200 s runtime.
  EXPECT_LT(metrics.wait.max, 100.0);
}

WorkloadMetrics run_fs_workload(int jobs, bool flexible, bool asynchronous,
                                std::uint64_t seed, double sched_period = -1.0,
                                int steps = 2) {
  wl::FeitelsonParams params;
  params.jobs = jobs;
  params.max_size = 20;
  params.mean_interarrival = 10.0;
  params.max_runtime = 60.0 * steps;
  params.seed = seed;
  const auto workload = wl::generate_feitelson(params);

  sim::Engine engine;
  DriverConfig config;
  config.rms.nodes = 20;
  config.asynchronous = asynchronous;
  config.sched_period_override = sched_period;
  WorkloadDriver driver(engine, config);
  for (const auto& job : workload) {
    driver.add(fs_plan(job.arrival, job.size, job.runtime, steps, flexible));
  }
  return driver.run();
}

TEST(Driver, FlexibleWorkloadBeatsFixed) {
  // The Fig. 3 property at miniature scale: same workload, flexible
  // configuration completes sooner and with shorter waits.
  const auto fixed = run_fs_workload(15, false, false, 42);
  const auto flexible = run_fs_workload(15, true, false, 42);
  EXPECT_EQ(fixed.jobs, 15);
  EXPECT_EQ(flexible.jobs, 15);
  EXPECT_GT(flexible.expands + flexible.shrinks, 0);
  EXPECT_LT(flexible.makespan, fixed.makespan);
  // With only 15 jobs on 20 nodes the fixed run barely queues, so allow
  // a small absolute wait regression; at workload scale (Fig. 11) the
  // flexible wait is dramatically lower.
  EXPECT_LE(flexible.wait.mean, fixed.wait.mean + 5.0);
}

TEST(Driver, DeterministicAcrossRuns) {
  const auto a = run_fs_workload(12, true, false, 7);
  const auto b = run_fs_workload(12, true, false, 7);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.wait.mean, b.wait.mean);
  EXPECT_EQ(a.expands, b.expands);
  EXPECT_EQ(a.shrinks, b.shrinks);
}

TEST(Driver, AsyncModeRunsAndResizes) {
  const auto metrics = run_fs_workload(12, true, true, 21);
  EXPECT_EQ(metrics.jobs, 12);
  EXPECT_GT(metrics.checks, 0);
}

TEST(Driver, InhibitorReducesChecks) {
  const auto eager = run_fs_workload(10, true, false, 5, 0.0, 30);
  const auto inhibited = run_fs_workload(10, true, false, 5, 10.0, 30);
  EXPECT_LT(inhibited.checks, eager.checks);
  EXPECT_EQ(inhibited.jobs, eager.jobs);
}

TEST(Driver, MixedWorkloadBothKindsComplete) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(16));
  for (int i = 0; i < 6; ++i) {
    driver.add(fs_plan(i * 5.0, 4, 60.0, 2, /*flexible=*/(i % 2 == 0), 16));
  }
  const auto metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 6);
  EXPECT_GT(metrics.makespan, 0.0);
}

TEST(Driver, UtilizationWithinBounds) {
  const auto metrics = run_fs_workload(10, true, false, 3);
  EXPECT_GT(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0);
}

TEST(Driver, UtilizationWindowStartsAtFirstArrival) {
  // One 4-node job on an 8-node cluster, arriving at t=100 and running
  // 40 s: utilization must be 0.5 over [100, 140], not diluted by the
  // empty lead-in to ~0.14 over [0, 140].
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(100.0, 4, 40.0, 2, /*flexible=*/false));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_NEAR(metrics.makespan, 140.0, 1e-9);
  EXPECT_NEAR(metrics.utilization, 0.5, 1e-9);
}

TEST(Driver, EmptyWorkloadMetricsAreZeroNotNaN) {
  // An empty run (and a mid-run probe before anything arrived) must
  // report zeroed metrics, never divide by an empty window.
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  const WorkloadMetrics probed = driver.collect_metrics();
  EXPECT_EQ(probed.jobs, 0);
  EXPECT_DOUBLE_EQ(probed.utilization, 0.0);
  EXPECT_FALSE(std::isnan(probed.utilization));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 0);
  EXPECT_DOUBLE_EQ(metrics.makespan, 0.0);
  EXPECT_DOUBLE_EQ(metrics.utilization, 0.0);
  EXPECT_FALSE(std::isnan(metrics.utilization));
  EXPECT_FALSE(std::isnan(metrics.wait.mean));
}

TEST(Driver, StaleSubmissionIsRejectedNotReordered) {
  // Once the simulated clock passed an instant, a submission claiming to
  // arrive back then is an error — the driver refuses instead of
  // silently reordering history.
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(0.0, 4, 40.0, 2, /*flexible=*/false));
  driver.run();
  EXPECT_GT(engine.now(), 0.0);
  try {
    driver.submit_at(fs_plan(0.0, 2, 20.0, 2, /*flexible=*/false));
    FAIL() << "stale submission accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("precedes the simulated clock"),
              std::string::npos);
  }
  // add() enforces the same contract.
  EXPECT_THROW(driver.add(fs_plan(0.0, 2, 20.0, 2, /*flexible=*/false)),
               std::invalid_argument);
  // A future arrival is still welcome: the driver keeps running.
  driver.submit_at(fs_plan(engine.now() + 10.0, 2, 20.0, 2,
                           /*flexible=*/false));
  engine.run();
  EXPECT_EQ(driver.completed(), 2);
}

DriverConfig heterogeneous_config() {
  DriverConfig config;
  config.rms.partitions = {rms::Partition{"fast", 4, 1.0},
                           rms::Partition{"slow", 4, 0.5}};
  return config;
}

JobPlan pinned_plan(const char* partition, double runtime, int steps) {
  JobPlan plan = fs_plan(0.0, 4, runtime, steps, /*flexible=*/false, 4);
  plan.partition = partition;
  return plan;
}

TEST(Driver, SlowPartitionScalesStepTime) {
  // The same job pinned to half-speed nodes takes exactly twice as long.
  double fast_makespan = 0.0;
  {
    sim::Engine engine;
    WorkloadDriver driver(engine, heterogeneous_config());
    driver.add(pinned_plan("fast", 40.0, 2));
    fast_makespan = driver.run().makespan;
  }
  sim::Engine engine;
  WorkloadDriver driver(engine, heterogeneous_config());
  driver.add(pinned_plan("slow", 40.0, 2));
  const double slow_makespan = driver.run().makespan;
  EXPECT_NEAR(fast_makespan, 40.0, 1e-9);
  EXPECT_NEAR(slow_makespan, 80.0, 1e-9);
}

TEST(Driver, SpanningJobGatedBySlowestNode) {
  // 6 nodes requested on a 4+4 heterogeneous cluster: the allocation
  // spans into the slow partition and the whole job steps at 0.5x.
  sim::Engine engine;
  WorkloadDriver driver(engine, heterogeneous_config());
  driver.add(fs_plan(0.0, 6, 60.0, 2, /*flexible=*/false, 6));
  const WorkloadMetrics metrics = driver.run();
  EXPECT_NEAR(metrics.makespan, 120.0, 1e-9);
}

TEST(Driver, PartitionUtilizationReported) {
  sim::Engine engine;
  WorkloadDriver driver(engine, heterogeneous_config());
  driver.add(pinned_plan("fast", 40.0, 2));
  driver.add(pinned_plan("slow", 40.0, 2));
  const WorkloadMetrics metrics = driver.run();
  ASSERT_EQ(metrics.partitions.size(), 2u);
  EXPECT_EQ(metrics.partitions[0].name, "fast");
  EXPECT_EQ(metrics.partitions[1].name, "slow");
  // The slow job runs twice as long on its half of the cluster, so its
  // partition is busier over the common window.
  EXPECT_GT(metrics.partitions[1].utilization,
            metrics.partitions[0].utilization);
  for (const auto& part : metrics.partitions) {
    EXPECT_GT(part.utilization, 0.0);
    EXPECT_LE(part.utilization, 1.0);
  }
}

TEST(Driver, ScheduleTelemetryExposed) {
  const auto metrics = run_fs_workload(15, true, false, 42);
  EXPECT_GT(metrics.schedule_passes, 0);
  EXPECT_GT(metrics.schedule_passes_saved, 0);
  EXPECT_GE(metrics.schedule_requests, metrics.schedule_passes);
}

TEST(Driver, TraceSeriesRecorded) {
  sim::Engine engine;
  WorkloadDriver driver(engine, small_config(8));
  driver.add(fs_plan(0.0, 4, 40.0, 2, false));
  driver.run();
  EXPECT_TRUE(driver.trace().has("allocated"));
  EXPECT_TRUE(driver.trace().has("running"));
  EXPECT_TRUE(driver.trace().has("completed"));
  EXPECT_DOUBLE_EQ(driver.trace().series("completed").max_value(), 1.0);
}

TEST(Driver, RealisticMixWithTableOneModels) {
  // Miniature Section IX: CG/Jacobi/N-body jobs (scaled-down iteration
  // counts) on a 64-node cluster, submitted at their max size.
  sim::Engine engine;
  DriverConfig config;
  config.rms.nodes = 64;
  WorkloadDriver driver(engine, config);
  util::Rng rng(99);
  double arrival = 0.0;
  for (int i = 0; i < 9; ++i) {
    arrival += rng.exponential_mean(5.0);
    JobPlan plan;
    switch (i % 3) {
      case 0: plan.model = apps::cg_model(); break;
      case 1: plan.model = apps::jacobi_model(); break;
      default: plan.model = apps::nbody_model(); break;
    }
    plan.model.iterations = std::min(plan.model.iterations, 2000);
    plan.arrival = arrival;
    plan.submit_nodes = plan.model.request.max_procs;
    plan.flexible = true;
    driver.add(plan);
  }
  const auto metrics = driver.run();
  EXPECT_EQ(metrics.jobs, 9);
  // The CG/Jacobi jobs prefer 8 procs: with contention some of them must
  // have shrunk from 32.
  EXPECT_GE(metrics.shrinks, 1);
}

}  // namespace
