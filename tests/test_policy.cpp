// Exhaustive tests of the reconfiguration policy (Algorithm 1), branch by
// branch, plus parameterized sweeps of the size arithmetic helpers.
#include <gtest/gtest.h>

#include "rms/policy.hpp"

namespace {

using namespace dmr::rms;

Job running_job(JobId id, int nodes) {
  Job job;
  job.id = id;
  job.spec.requested_nodes = nodes;
  job.spec.min_nodes = 1;
  job.spec.max_nodes = 32;
  job.state = JobState::Running;
  job.requested_nodes = nodes;
  job.nodes.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) job.nodes[static_cast<std::size_t>(i)] = i;
  return job;
}

Job pending_job(JobId id, int request) {
  Job job;
  job.id = id;
  job.spec.requested_nodes = request;
  job.requested_nodes = request;
  job.state = JobState::Pending;
  return job;
}

DmrRequest request(int min, int max, int preferred = 0, int factor = 2) {
  DmrRequest r;
  r.min_procs = min;
  r.max_procs = max;
  r.preferred = preferred;
  r.factor = factor;
  return r;
}

TEST(MaxProcsTo, LargestFactorReachableWithinIdle) {
  EXPECT_EQ(max_procs_to(4, 2, 32, 100), 32);
  EXPECT_EQ(max_procs_to(4, 2, 32, 12), 16);  // growth 28 won't fit in 12
  EXPECT_EQ(max_procs_to(4, 2, 32, 3), 0);    // even 4->8 needs 4 idle
  EXPECT_EQ(max_procs_to(4, 2, 7, 100), 0);   // 8 exceeds the limit
  EXPECT_EQ(max_procs_to(3, 2, 20, 100), 12);
}

TEST(MinProcsRun, LargestShrinkUnderCeiling) {
  EXPECT_EQ(min_procs_run(16, 2, 10, 1), 8);
  EXPECT_EQ(min_procs_run(16, 2, 3, 1), 2);
  EXPECT_EQ(min_procs_run(16, 2, 3, 4), 0);   // min bound blocks it
  EXPECT_EQ(min_procs_run(6, 2, 4, 1), 3);
  EXPECT_EQ(min_procs_run(5, 2, 4, 1), 0);    // 5 has no factor-2 divisor
}

TEST(Policy, RequiresRunningJob) {
  Job job = running_job(1, 4);
  job.state = JobState::Pending;
  PolicyView view;
  view.job = &job;
  EXPECT_THROW(reconfiguration_policy(view, request(1, 8)),
               std::invalid_argument);
}

// --- Mode 1: request an action ---------------------------------------------

TEST(Policy, ForcedExpandGrantedWhenIdleSuffices) {
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/12, {}};
  const auto d = reconfiguration_policy(view, request(8, 16));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 16);
}

TEST(Policy, ForcedExpandRefusedWithoutResources) {
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/2, {}};
  const auto d = reconfiguration_policy(view, request(8, 16));
  EXPECT_EQ(d.action, Action::None);
}

TEST(Policy, ForcedShrinkToMaxBound) {
  const Job job = running_job(1, 16);
  PolicyView view{&job, 0, {}};
  const auto d = reconfiguration_policy(view, request(1, 4));
  EXPECT_EQ(d.action, Action::Shrink);
  EXPECT_EQ(d.new_size, 4);
}

TEST(Policy, ForcedShrinkBlockedByMin) {
  const Job job = running_job(1, 6);
  PolicyView view{&job, 0, {}};
  // max 2 forces below 6; only divisor chain 6->3; 3 >= min 3 -> but
  // 3 > max 2, so nothing fits.
  const auto d = reconfiguration_policy(view, request(3, 2));
  EXPECT_EQ(d.action, Action::None);
}

// --- Mode 2: preferred ------------------------------------------------------

TEST(Policy, EmptyQueueExpandsToJobMax) {
  // Algorithm 1 lines 2-4: alone in the queue -> expand to jobMaxProcs.
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/28, {}};
  const auto d = reconfiguration_policy(view, request(1, 32, /*pref=*/8));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 32);
}

TEST(Policy, EmptyQueueExpandLimitedByIdle) {
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/5, {}};
  const auto d = reconfiguration_policy(view, request(1, 32, 8));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 8);
}

TEST(Policy, PreferredEqualsCurrentNoAction) {
  const Job job = running_job(1, 8);
  const Job queued = pending_job(2, 64);
  PolicyView view{&job, /*idle=*/16, {&queued}};
  const auto d = reconfiguration_policy(view, request(2, 32, 8));
  EXPECT_EQ(d.action, Action::None);
}

TEST(Policy, ExpandTowardPreferred) {
  const Job job = running_job(1, 4);
  const Job queued = pending_job(2, 64);  // cannot run regardless
  PolicyView view{&job, /*idle=*/4, {&queued}};
  const auto d = reconfiguration_policy(view, request(2, 32, 8));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 8);
}

TEST(Policy, PartialExpandTowardPreferred) {
  // Preferred 16 but only 4 idle: grant the largest reachable step (8).
  const Job job = running_job(1, 4);
  const Job queued = pending_job(2, 64);
  PolicyView view{&job, /*idle=*/4, {&queued}};
  const auto d = reconfiguration_policy(view, request(2, 32, 16));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 8);
}

TEST(Policy, ShrinkToPreferred) {
  // The realistic-workload pattern: submitted at 32, preferred 8 ->
  // shrink straight to 8 (Algorithm 1 lines 10-12).
  const Job job = running_job(1, 32);
  const Job queued = pending_job(2, 16);
  PolicyView view{&job, /*idle=*/0, {&queued}};
  const auto d = reconfiguration_policy(view, request(2, 32, 8));
  EXPECT_EQ(d.action, Action::Shrink);
  EXPECT_EQ(d.new_size, 8);
}

TEST(Policy, PreferredNotReachableFallsThroughToWideOpt) {
  // Preferred 6 unreachable from 8 by factor 2 -> wide optimization;
  // the queued job (needs 4, idle 0) can run if we shrink to 4.
  const Job job = running_job(1, 8);
  const Job queued = pending_job(2, 4);
  PolicyView view{&job, /*idle=*/0, {&queued}};
  const auto d = reconfiguration_policy(view, request(1, 32, 6));
  EXPECT_EQ(d.action, Action::Shrink);
  EXPECT_EQ(d.new_size, 4);
  EXPECT_EQ(d.boost_target, 2);
}

// --- Mode 3: wide optimization ----------------------------------------------

TEST(Policy, WideOptShrinkForQueuedJobAndBoost) {
  // Algorithm 1 lines 14-18: shrink so the queued job can start, boost it.
  const Job job = running_job(1, 16);
  const Job queued = pending_job(2, 12);
  PolicyView view{&job, /*idle=*/0, {&queued}};
  const auto d = reconfiguration_policy(view, request(1, 32));
  EXPECT_EQ(d.action, Action::Shrink);
  // need = 12 - 0 = 12 -> ceiling 4 -> largest divisor <= 4 is 4.
  EXPECT_EQ(d.new_size, 4);
  EXPECT_EQ(d.boost_target, 2);
}

TEST(Policy, WideOptShrinkAccountsForIdleNodes) {
  const Job job = running_job(1, 16);
  const Job queued = pending_job(2, 12);
  PolicyView view{&job, /*idle=*/8, {&queued}};
  const auto d = reconfiguration_policy(view, request(1, 32));
  // need = 12 - 8 = 4 -> ceiling 12 -> shrink to 8 suffices.
  EXPECT_EQ(d.action, Action::Shrink);
  EXPECT_EQ(d.new_size, 8);
}

TEST(Policy, WideOptNoActionWhenQueuedJobAlreadyFits) {
  const Job job = running_job(1, 8);
  const Job queued = pending_job(2, 4);
  PolicyView view{&job, /*idle=*/6, {&queued}};
  const auto d = reconfiguration_policy(view, request(1, 32));
  EXPECT_EQ(d.action, Action::None);
}

TEST(Policy, WideOptExpandWhenNoPendingJobCanBeHelped) {
  // Algorithm 1 lines 19-21: a pending job too big to be helped even by
  // a full shrink -> expand instead.
  const Job job = running_job(1, 4);
  const Job queued = pending_job(2, 64);
  PolicyView view{&job, /*idle=*/12, {&queued}};
  const auto d = reconfiguration_policy(view, request(1, 32));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 16);
}

TEST(Policy, WideOptExpandOnEmptyQueue) {
  // Algorithm 1 lines 22-24.
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/60, {}};
  const auto d = reconfiguration_policy(view, request(1, 20));
  EXPECT_EQ(d.action, Action::Expand);
  EXPECT_EQ(d.new_size, 16);  // factor-2 chain caps below 20
}

TEST(Policy, WideOptNoneWhenNothingPossible) {
  const Job job = running_job(1, 4);
  PolicyView view{&job, /*idle=*/2, {}};
  const auto d = reconfiguration_policy(view, request(1, 4));
  EXPECT_EQ(d.action, Action::None);
}

TEST(Policy, ShrinkRespectsJobMinimum) {
  const Job job = running_job(1, 8);
  const Job queued = pending_job(2, 7);
  PolicyView view{&job, /*idle=*/0, {&queued}};
  // Helping the queued job needs shrink to ceiling 1, but min is 4.
  const auto d = reconfiguration_policy(view, request(4, 32));
  EXPECT_EQ(d.action, Action::None);
}

TEST(Policy, ScansPendingQueueInPriorityOrder) {
  // First pending job too large to help; second is helpable -> shrink
  // for the second.
  const Job job = running_job(1, 16);
  const Job big = pending_job(2, 64);
  const Job fit = pending_job(3, 12);
  PolicyView view{&job, /*idle=*/0, {&big, &fit}};
  const auto d = reconfiguration_policy(view, request(1, 32));
  EXPECT_EQ(d.action, Action::Shrink);
  EXPECT_EQ(d.new_size, 4);
  EXPECT_EQ(d.boost_target, 3);
}

// --- Parameterized sweep: policy never grants infeasible sizes --------------

struct SweepCase {
  int current;
  int idle;
  int preferred;
  int pending_request;  // 0 = no pending job
};

class PolicySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicySweep, DecisionsAreAlwaysFeasible) {
  const SweepCase param = GetParam();
  const Job job = running_job(1, param.current);
  const Job queued = pending_job(2, param.pending_request);
  PolicyView view;
  view.job = &job;
  view.idle_nodes = param.idle;
  if (param.pending_request > 0) view.pending.push_back(&queued);
  const DmrRequest req = request(1, 32, param.preferred);
  const PolicyDecision d = reconfiguration_policy(view, req);
  switch (d.action) {
    case Action::Expand:
      EXPECT_GT(d.new_size, param.current);
      EXPECT_LE(d.new_size - param.current, param.idle);
      EXPECT_LE(d.new_size, 32);
      EXPECT_TRUE(factor_reachable(param.current, d.new_size, 2));
      break;
    case Action::Shrink:
      EXPECT_LT(d.new_size, param.current);
      EXPECT_GE(d.new_size, 1);
      EXPECT_TRUE(factor_reachable(param.current, d.new_size, 2));
      break;
    case Action::None:
      break;
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (int current : {1, 2, 3, 4, 6, 8, 16, 32}) {
    for (int idle : {0, 1, 4, 16, 32}) {
      for (int preferred : {0, 1, 8, 16}) {
        for (int pending : {0, 2, 8, 31}) {
          cases.push_back(SweepCase{current, idle, preferred, pending});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PolicySweep,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
