// Calendar-queue engine tests: ordering contract, generation safety and
// the golden outcome digests pinning the rewrite to the pre-change
// (priority-queue) engine, bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "engine_digests.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dmr::sim;

// Golden outcome digests captured from the pre-calendar engine (the
// std::priority_queue implementation) across four seeds and the three
// drive paths.  The calendar rewrite must reproduce every one exactly —
// a single changed timestamp, counter or sample line anywhere in a run
// changes the FNV-1a value.
struct GoldenDigest {
  std::uint64_t seed;
  std::uint64_t single_cluster;
  std::uint64_t federation;
  std::uint64_t service;
};

constexpr GoldenDigest kGoldens[] = {
    {1ULL, 0x374f9dc3ac058befULL, 0x24c7dc104784bfb6ULL,
     0xa4f80886c34a1411ULL},
    {7ULL, 0xa1cd19c251cfe6e5ULL, 0x5334bdb3d8907c07ULL,
     0x70743ba511a4e6a9ULL},
    {42ULL, 0x957470ebdee4ce5aULL, 0x288dda3f3f3a6592ULL,
     0x5ae78059d924d110ULL},
    {2017ULL, 0x855160be6ef40875ULL, 0x3f5968af9121d2dbULL,
     0x566e87c19281090aULL},
};

TEST(CalendarGolden, SingleClusterSeedSweep) {
  for (const GoldenDigest& golden : kGoldens) {
    EXPECT_EQ(dmr::digests::single_cluster_digest(golden.seed),
              golden.single_cluster)
        << "seed " << golden.seed;
  }
}

TEST(CalendarGolden, FederationSeedSweep) {
  for (const GoldenDigest& golden : kGoldens) {
    EXPECT_EQ(dmr::digests::federation_digest(golden.seed), golden.federation)
        << "seed " << golden.seed;
  }
}

TEST(CalendarGolden, ServiceReplaySeedSweep) {
  for (const GoldenDigest& golden : kGoldens) {
    EXPECT_EQ(dmr::digests::service_digest(golden.seed), golden.service)
        << "seed " << golden.seed;
  }
}

// The engine's ordering contract: events fire in ascending (time, lane,
// sequence) order no matter how the calendar buckets them.  Random
// schedule/cancel interleavings — including schedules issued from inside
// running callbacks — are checked against a reference sort of exactly
// the surviving (time, lane, seq) keys.
TEST(CalendarOrdering, RandomScheduleCancelMatchesReferenceSort) {
  for (std::uint32_t round = 0; round < 20; ++round) {
    std::mt19937_64 rng(round * 7919 + 13);
    Engine engine;
    // key = (time, lane, issue index); issue index stands in for the
    // engine's internal sequence number — both count schedule calls.
    using Key = std::tuple<double, int, int>;
    std::vector<Key> expected;
    std::vector<Key> fired;
    std::vector<EventId> ids;
    std::vector<Key> keys;
    int issued = 0;

    // Time spans from "immediate" through several year re-anchors:
    // exponents reach ~2^40 seconds, far beyond any initial ring span.
    auto random_time = [&](double at_least) {
      const double exponent = std::uniform_real_distribution<>(0.0, 40.0)(rng);
      return at_least + std::exp2(exponent) - 1.0;
    };
    auto random_lane = [&] {
      const int lane = std::uniform_int_distribution<>(0, 2)(rng);
      return static_cast<Lane>(lane);
    };
    auto schedule_one = [&](double at_least) {
      const double time = random_time(at_least);
      const Lane lane = random_lane();
      const Key key{time, static_cast<int>(lane), issued++};
      const EventId id = engine.schedule_at(
          time, [&fired, key] { fired.push_back(key); }, lane);
      ids.push_back(id);
      keys.push_back(key);
    };

    for (int i = 0; i < 400; ++i) schedule_one(0.0);
    // A few events reschedule from inside the run (chained steps).
    for (int i = 0; i < 30; ++i) {
      const double time = random_time(0.0);
      const Key key{time, static_cast<int>(Lane::Normal), issued++};
      engine.schedule_at(time, [&, key] {
        fired.push_back(key);
        schedule_one(std::get<0>(key));
      });
      keys.push_back(key);
      ids.push_back(kInvalidEvent);  // keep indices aligned; not cancellable
    }
    // Cancel a random third of the up-front events.
    std::vector<bool> cancelled(keys.size(), false);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == kInvalidEvent) continue;
      if (std::uniform_int_distribution<>(0, 2)(rng) == 0) {
        EXPECT_TRUE(engine.cancel(ids[i]));
        cancelled[i] = true;
      }
    }
    engine.run();

    for (std::size_t i = 0; i < cancelled.size(); ++i) {
      if (!cancelled[i]) expected.push_back(keys[i]);
    }
    // The callbacks scheduled from inside the run appended their keys to
    // `keys` past the pre-run window; none of those were cancellable.
    for (std::size_t i = cancelled.size(); i < keys.size(); ++i) {
      expected.push_back(keys[i]);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(fired, expected) << "round " << round;
  }
}

// Far-future events force year re-anchoring (advance_year): the ring
// only spans a finite window, so a horizon jump must re-bucket and keep
// firing in order.
TEST(CalendarOrdering, FarFutureYearAdvance) {
  Engine engine;
  std::vector<double> fired;
  // Powers of ~1000 apart: every gap forces at least one re-anchor.
  const double times[] = {1.0, 1e3, 1e6, 1e9, 1e12, 1e15};
  for (const double t : times) {
    engine.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  // Interleave near-term chatter so the first year is non-trivial.
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(0.5 + 0.001 * i, [] {});
  }
  engine.run();
  ASSERT_EQ(fired.size(), 6u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_DOUBLE_EQ(engine.now(), 1e15);
}

// Generation safety: once a slot is reclaimed and reused, the stale
// EventId (same slot, older generation) must not cancel the new tenant.
TEST(CalendarSlots, StaleCancelAfterSlotReuseIsRejected) {
  Engine engine;
  bool first_fired = false;
  const EventId first = engine.schedule_at(1.0, [&] { first_fired = true; });
  ASSERT_TRUE(engine.cancel(first));  // slot goes back to the free list
  bool second_fired = false;
  const EventId second = engine.schedule_at(2.0, [&] { second_fired = true; });
  // Slot reuse is what makes the test meaningful (LIFO free list).
  ASSERT_EQ(first >> 32, second >> 32);
  ASSERT_NE(first, second);  // generations differ
  EXPECT_FALSE(engine.cancel(first));  // stale id: must not hit the slot
  engine.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(CalendarSlots, CancelOfFiredEventNeverResurfaces) {
  Engine engine;
  int fires = 0;
  const EventId id = engine.schedule_at(1.0, [&] { ++fires; });
  engine.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(engine.cancel(id));
  // Reuse the slot and make sure the old id still bounces.
  const EventId next = engine.schedule_at(2.0, [] {});
  EXPECT_FALSE(engine.cancel(id));
  EXPECT_TRUE(engine.cancel(next));
}

}  // namespace
