// Workload model tests: distribution shapes, determinism, repeat groups.
#include <gtest/gtest.h>

#include <set>

#include "util/stats.hpp"
#include "wl/feitelson.hpp"

namespace {

using namespace dmr::wl;

FeitelsonParams params(int jobs, std::uint64_t seed = 1) {
  FeitelsonParams p;
  p.jobs = jobs;
  p.max_size = 20;
  p.mean_interarrival = 10.0;
  p.seed = seed;
  return p;
}

TEST(SizeWeights, SmallSizesDominate) {
  const auto w = feitelson_size_weights(20, 3.0);
  ASSERT_EQ(w.size(), 20u);
  EXPECT_GT(w[0], w[2]);   // size 1 > size 3
  EXPECT_GT(w[4], w[5]);   // size 5 > size 6
}

TEST(SizeWeights, PowersOfTwoSpike) {
  const auto w = feitelson_size_weights(20, 3.0);
  EXPECT_GT(w[7], w[6]);    // 8 boosted over 7
  EXPECT_GT(w[15], w[14]);  // 16 boosted over 15
  EXPECT_GT(w[15], w[16]);  // 16 over 17
}

TEST(SizeWeights, RejectsBadMax) {
  EXPECT_THROW(feitelson_size_weights(0, 3.0), std::invalid_argument);
}

TEST(BalancedInterarrival, MatchesSampledOfferedLoad) {
  // The closed-form pacing must reproduce the sampled node-seconds per
  // job: offered load = E[size * runtime] / (interarrival * nodes).
  FeitelsonParams p = params(4000);
  p.mean_interarrival =
      feitelson_balanced_interarrival(p, /*nodes=*/20, /*target_load=*/0.8);
  const auto jobs = generate_feitelson(p);
  double node_seconds = 0.0;
  for (const auto& job : jobs) node_seconds += job.size * job.runtime;
  const double horizon = jobs.back().arrival;
  const double sampled_load = node_seconds / (horizon * 20.0);
  EXPECT_NEAR(sampled_load, 0.8, 0.25);
}

TEST(BalancedInterarrival, ScalesInverselyWithClusterSize) {
  const FeitelsonParams p = params(100);
  const double small = feitelson_balanced_interarrival(p, 20, 0.8);
  const double large = feitelson_balanced_interarrival(p, 80, 0.8);
  EXPECT_NEAR(small / large, 4.0, 1e-9);
  EXPECT_THROW(feitelson_balanced_interarrival(p, 0, 0.8),
               std::invalid_argument);
  EXPECT_THROW(feitelson_balanced_interarrival(p, 20, 0.0),
               std::invalid_argument);
}

TEST(Generate, DeterministicForSeed) {
  const auto a = generate_feitelson(params(100, 7));
  const auto b = generate_feitelson(params(100, 7));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  const auto a = generate_feitelson(params(50, 1));
  const auto b = generate_feitelson(params(50, 2));
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size == b[i].size && a[i].runtime == b[i].runtime) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Generate, ExactJobCountAndMonotoneArrivals) {
  const auto jobs = generate_feitelson(params(237));
  EXPECT_EQ(jobs.size(), 237u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    EXPECT_EQ(jobs[i].index, static_cast<int>(i));
  }
}

TEST(Generate, SizesWithinBounds) {
  const auto jobs = generate_feitelson(params(500));
  for (const auto& job : jobs) {
    EXPECT_GE(job.size, 1);
    EXPECT_LE(job.size, 20);
    EXPECT_GE(job.runtime, 1.0);
  }
}

TEST(Generate, InterArrivalMeanApproximatesPoisson) {
  auto p = params(4000, 3);
  const auto jobs = generate_feitelson(p);
  const auto stats = workload_stats(jobs);
  EXPECT_NEAR(stats.mean_interarrival, 10.0, 1.0);
}

TEST(Generate, RuntimeCorrelatesWithSize) {
  auto p = params(6000, 5);
  p.max_runtime = 0.0;
  const auto jobs = generate_feitelson(p);
  double small_sum = 0.0, big_sum = 0.0;
  int small_n = 0, big_n = 0;
  for (const auto& job : jobs) {
    if (job.size <= 4) {
      small_sum += job.runtime;
      ++small_n;
    } else if (job.size >= 12) {
      big_sum += job.runtime;
      ++big_n;
    }
  }
  ASSERT_GT(small_n, 100);
  ASSERT_GT(big_n, 100);
  EXPECT_GT(big_sum / big_n, small_sum / small_n);
}

TEST(Generate, RuntimeCapRespected) {
  auto p = params(1000, 9);
  p.max_runtime = 60.0;
  for (const auto& job : generate_feitelson(p)) {
    EXPECT_LE(job.runtime, 60.0);
  }
}

TEST(Generate, RepeatGroupsShareSizeAndRuntime) {
  const auto jobs = generate_feitelson(params(2000, 11));
  int repeats = 0;
  for (const auto& job : jobs) {
    if (job.repeat_of < 0) continue;
    ++repeats;
    const auto& first = jobs[static_cast<std::size_t>(job.repeat_of)];
    EXPECT_EQ(job.size, first.size);
    EXPECT_EQ(job.runtime, first.runtime);
    EXPECT_GT(job.arrival, first.arrival);
  }
  // Heavy-tailed repeats: some, but a minority.
  EXPECT_GT(repeats, 50);
  EXPECT_LT(repeats, 1200);
}

TEST(Generate, Pow2FractionElevated) {
  const auto jobs = generate_feitelson(params(5000, 13));
  const auto stats = workload_stats(jobs);
  // Powers of two in [1,20]: {1,2,4,8,16} = 25% of sizes but should
  // carry well over 40% of the mass with the boost.
  EXPECT_GT(stats.pow2_fraction, 0.45);
}

TEST(Generate, HyperexponentialRuntimeOverdispersed) {
  auto p = params(8000, 17);
  const auto jobs = generate_feitelson(p);
  dmr::util::RunningStats stats;
  for (const auto& job : jobs) stats.add(job.runtime);
  EXPECT_GT(stats.stddev() / stats.mean(), 1.0);
}

}  // namespace
