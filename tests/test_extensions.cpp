// Tests for the framework extensions beyond the paper's core: moldable
// submission (the paper's named future work), the accounting ledger, and
// the additional smpi collectives (sendrecv / alltoallv / split).
#include <gtest/gtest.h>

#include "rms/accounting.hpp"
#include "rms/manager.hpp"
#include "dmr/reconfig_point.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr;
using namespace dmr::rms;

JobSpec spec(const std::string& name, int nodes, int min = 1,
             bool moldable = false) {
  JobSpec s;
  s.name = name;
  s.requested_nodes = nodes;
  s.min_nodes = min;
  s.max_nodes = 32;
  s.flexible = true;
  s.moldable = moldable;
  s.time_limit = 100.0;
  return s;
}

TEST(Moldable, HeadStartsSmallInsteadOfWaiting) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  const JobId hog = m.submit(spec("hog", 6), 0.0);
  m.schedule(0.0);
  // Rigid 8-node job would wait; moldable starts on the 2 idle nodes.
  const JobId mold = m.submit(spec("mold", 8, 1, /*moldable=*/true), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(mold).running());
  EXPECT_EQ(m.job(mold).allocated(), 2);
  EXPECT_TRUE(m.job(hog).running());
}

TEST(Moldable, RigidJobStillWaits) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  m.submit(spec("hog", 6), 0.0);
  m.schedule(0.0);
  const JobId rigid = m.submit(spec("rigid", 8, 1, /*moldable=*/false), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(rigid).pending());
}

TEST(Moldable, RespectsMinimum) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  m.submit(spec("hog", 6), 0.0);
  m.schedule(0.0);
  // Moldable but needs at least 4: only 2 idle -> must wait.
  const JobId mold = m.submit(spec("mold", 8, 4, true), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(mold).pending());
}

TEST(Moldable, DoesNotStarveNonMoldableHead) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  m.submit(spec("hog", 6), 0.0);
  m.schedule(0.0);
  // Rigid head (higher priority: earlier submit), moldable behind it:
  // molding the follower would jump the queue, so nothing starts.
  const JobId head = m.submit(spec("head", 8, 8), 1.0);
  const JobId follower = m.submit(spec("follower", 8, 1, true), 2.0);
  m.schedule(3.0);
  EXPECT_TRUE(m.job(head).pending());
  EXPECT_TRUE(m.job(follower).pending());
}

TEST(Moldable, MoldedJobCanExpandLater) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  const JobId hog = m.submit(spec("hog", 6), 0.0);
  m.schedule(0.0);
  const JobId mold = m.submit(spec("mold", 8, 1, true), 1.0);
  m.schedule(1.0);
  ASSERT_EQ(m.job(mold).allocated(), 2);
  m.job_finished(hog, 5.0);
  DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  const auto outcome = m.dmr_check(mold, request, 6.0);
  EXPECT_EQ(outcome.action, Action::Expand);
  EXPECT_EQ(m.job(mold).allocated(), 8);
}

TEST(Accounting, RecordsLifecycleAndNodeSeconds) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  Accounting accounting(m);
  const JobId id = m.submit(spec("a", 4), 0.0);
  m.schedule(2.0);
  m.job_finished(id, 12.0);
  ASSERT_TRUE(accounting.has(id));
  const JobRecord& record = accounting.record(id);
  EXPECT_EQ(record.name, "a");
  EXPECT_DOUBLE_EQ(record.submit_time, 0.0);
  EXPECT_DOUBLE_EQ(record.start_time, 2.0);
  EXPECT_DOUBLE_EQ(record.end_time, 12.0);
  EXPECT_EQ(record.final_state, JobState::Completed);
  EXPECT_EQ(record.started_nodes, 4);
  // 4 nodes x 10 s.
  EXPECT_DOUBLE_EQ(record.node_seconds, 40.0);
}

TEST(Accounting, ResizeSplitsTheIntegral) {
  Manager m(RmsConfig{.nodes = 16, .scheduler = {}});
  Accounting accounting(m);
  const JobId id = m.submit(spec("a", 4), 0.0);
  m.schedule(0.0);
  DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 16;
  // Expand 4 -> 16 at t=10.
  const auto outcome = m.dmr_check(id, request, 10.0);
  ASSERT_EQ(outcome.action, Action::Expand);
  m.job_finished(id, 20.0);
  const JobRecord& record = accounting.record(id);
  ASSERT_EQ(record.resizes.size(), 1u);
  EXPECT_EQ(record.resizes[0].old_size, 4);
  EXPECT_EQ(record.resizes[0].new_size, 16);
  EXPECT_EQ(record.final_nodes, 16);
  // 4 nodes x 10 s + 16 nodes x 10 s.
  EXPECT_DOUBLE_EQ(record.node_seconds, 200.0);
}

TEST(Accounting, ShrinkRecordedOnCompletion) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  Accounting accounting(m);
  const JobId id = m.submit(spec("a", 8), 0.0);
  m.schedule(0.0);
  m.submit(spec("queued", 4, 4), 1.0);
  DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  const auto outcome = m.dmr_check(id, request, 10.0);
  ASSERT_EQ(outcome.action, Action::Shrink);
  // Not recorded until the drain completes.
  EXPECT_TRUE(accounting.record(id).resizes.empty());
  m.complete_shrink(id, 12.0);
  ASSERT_EQ(accounting.record(id).resizes.size(), 1u);
  EXPECT_EQ(accounting.record(id).resizes[0].action, Action::Shrink);
  // Drain time bills at the old size: 8 x 12 so far.
  m.job_finished(id, 20.0);
  EXPECT_DOUBLE_EQ(accounting.record(id).node_seconds,
                   8 * 12.0 + 4 * 8.0);
}

TEST(Accounting, RenderContainsAllJobs) {
  Manager m(RmsConfig{.nodes = 8, .scheduler = {}});
  Accounting accounting(m);
  const JobId a = m.submit(spec("alpha", 2), 0.0);
  const JobId b = m.submit(spec("beta", 2), 0.0);
  m.schedule(0.0);
  m.job_finished(a, 5.0);
  m.job_finished(b, 6.0);
  const std::string table = accounting.render();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  const std::string csv = accounting.render_csv();
  EXPECT_NE(csv.find("job_id"), std::string::npos);
  EXPECT_EQ(accounting.records().size(), 2u);
  EXPECT_EQ(accounting.total_resizes(), 0);
}

TEST(SmpiSendrecv, PairwiseExchangeNoDeadlock) {
  smpi::Universe universe;
  universe.launch("t", 2, [](smpi::Context& ctx) {
    const int peer = 1 - ctx.rank();
    const std::vector<int> mine{ctx.rank() * 10, ctx.rank() * 10 + 1};
    const auto theirs = ctx.world().sendrecv(
        peer, 5, std::span<const int>(mine), peer, 5);
    ASSERT_EQ(theirs.size(), 2u);
    EXPECT_EQ(theirs[0], peer * 10);
    EXPECT_EQ(theirs[1], peer * 10 + 1);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(SmpiAlltoallv, PersonalizedExchange) {
  smpi::Universe universe;
  universe.launch("t", 3, [](smpi::Context& ctx) {
    // Rank r sends {r*10 + d} repeated (d+1) times to rank d.
    std::vector<std::vector<int>> outgoing(3);
    for (int d = 0; d < 3; ++d) {
      outgoing[static_cast<size_t>(d)].assign(static_cast<size_t>(d + 1),
                                              ctx.rank() * 10 + d);
    }
    const auto incoming = ctx.world().alltoallv(outgoing);
    ASSERT_EQ(incoming.size(), 3u);
    for (int s = 0; s < 3; ++s) {
      const auto& chunk = incoming[static_cast<size_t>(s)];
      ASSERT_EQ(chunk.size(), static_cast<size_t>(ctx.rank() + 1));
      for (int value : chunk) EXPECT_EQ(value, s * 10 + ctx.rank());
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(SmpiSplit, PartitionsByColor) {
  smpi::Universe universe;
  universe.launch("t", 6, [](smpi::Context& ctx) {
    // Even ranks -> color 0, odd -> color 1; key reverses the order.
    const int color = ctx.rank() % 2;
    const auto sub = ctx.world().split(color, -ctx.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    // Reverse key order: world rank 4 becomes rank 0 of the even group.
    const int expected_rank = (5 - ctx.rank()) / 2;
    EXPECT_EQ(sub.rank(), expected_rank);
    // The subgroup is a fully functional communicator.
    const int sum = sub.allreduce_sum(ctx.rank());
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(SmpiSplit, NegativeColorOptsOut) {
  smpi::Universe universe;
  universe.launch("t", 4, [](smpi::Context& ctx) {
    const int color = ctx.rank() == 3 ? -1 : 0;
    const auto sub = ctx.world().split(color, ctx.rank());
    if (ctx.rank() == 3) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      EXPECT_EQ(sub.rank(), ctx.rank());
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Evolving, SetRequestDrivesForcedExpansion) {
  // An *evolving* application (Feitelson's fourth class) decides mid-run
  // that it needs more processes: raising min_procs above the current
  // size is Algorithm 1's "request an action" mode.
  Manager m(RmsConfig{.nodes = 16, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(m, [&] { return now; });
  const JobId id = session.submit(spec("evolving", 4));
  session.schedule();

  DmrRequest initial;
  initial.min_procs = 4;
  initial.max_procs = 4;  // pinned: no spontaneous resizing
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, initial);

  smpi::Universe universe;
  universe.launch("t", 4, [&](smpi::Context& ctx) {
    // Phase 1: pinned request -> no action.
    const auto quiet = runtime->check_status(ctx.world());
    EXPECT_EQ(quiet.action, Action::None);
    // Phase 2: the application evolves — it now *requires* >= 8 procs.
    if (ctx.rank() == 0) {
      DmrRequest demand;
      demand.min_procs = 8;
      demand.max_procs = 8;
      runtime->set_request(demand);
    }
    ctx.world().barrier();
    const auto granted = runtime->check_status(ctx.world());
    EXPECT_EQ(granted.action, Action::Expand);
    EXPECT_EQ(granted.new_size, 8);
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(m.job(id).allocated(), 8);
}

TEST(Evolving, ForcedShrinkViaMaxBelowCurrent) {
  Manager m(RmsConfig{.nodes = 16, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(m, [&] { return now; });
  const JobId id = session.submit(spec("evolving", 8));
  session.schedule();

  DmrRequest demand;
  demand.min_procs = 1;
  demand.max_procs = 2;  // application no longer scales past 2
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, demand);

  smpi::Universe universe;
  universe.launch("t", 8, [&](smpi::Context& ctx) {
    const auto decision = runtime->check_status(ctx.world());
    EXPECT_EQ(decision.action, Action::Shrink);
    EXPECT_EQ(decision.new_size, 2);
    EXPECT_EQ(decision.hosts.size(), 2u);
    runtime->finish_shrink(ctx.world());
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(m.job(id).allocated(), 2);
}

TEST(SmpiSplit, RepeatedSplitsIndependent) {
  smpi::Universe universe;
  universe.launch("t", 4, [](smpi::Context& ctx) {
    const auto first = ctx.world().split(ctx.rank() / 2, ctx.rank());
    const auto second = ctx.world().split(ctx.rank() % 2, ctx.rank());
    EXPECT_EQ(first.size(), 2);
    EXPECT_EQ(second.size(), 2);
    // Messages on one sub-communicator do not leak into the other.
    first.send_value(1 - first.rank(), 1, 100 + ctx.rank());
    second.send_value(1 - second.rank(), 1, 200 + ctx.rank());
    const int from_first = first.recv_value<int>(1 - first.rank(), 1);
    const int from_second = second.recv_value<int>(1 - second.rank(), 1);
    EXPECT_GE(from_first, 100);
    EXPECT_LT(from_first, 104);
    EXPECT_GE(from_second, 200);
    EXPECT_LT(from_second, 204);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

}  // namespace
