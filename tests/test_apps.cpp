// Application correctness tests: each of the paper's applications must
// (a) compute the right answer in parallel, (b) survive resizes with its
// state intact, and (c) round-trip through the global checkpoint format.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>

#include "apps/cg.hpp"
#include "apps/flexible_sleep.hpp"
#include "apps/jacobi.hpp"
#include "apps/models.hpp"
#include "apps/nbody.hpp"
#include "rt/malleable_app.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr;
using namespace dmr::apps;

// --- reference/sequential oracles -------------------------------------------

TEST(CgReference, SolvesToOnes) {
  const auto x = cg_reference_solve(32, 64);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(JacobiReference, ConvergesToOnes) {
  const auto x = jacobi_reference_solve(32, 200);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(NbodyReference, MomentumConserved) {
  NbodyConfig config;
  config.particles = 24;
  std::vector<Particle> particles;
  for (std::size_t i = 0; i < config.particles; ++i) {
    particles.push_back(nbody_initial_particle(i, config));
  }
  const auto before = nbody_diagnostics(particles);
  for (int s = 0; s < 10; ++s) nbody_reference_step(particles, config);
  const auto after = nbody_diagnostics(particles);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(after.momentum[k], before.momentum[k], 1e-9)
        << "axis " << k;
  }
  EXPECT_DOUBLE_EQ(after.mass, before.mass);
}

TEST(NbodyReference, DeterministicInitialConditions) {
  NbodyConfig config;
  const Particle a = nbody_initial_particle(5, config);
  const Particle b = nbody_initial_particle(5, config);
  EXPECT_EQ(a.pos[0], b.pos[0]);
  EXPECT_EQ(a.mass, b.mass);
  const Particle c = nbody_initial_particle(6, config);
  EXPECT_NE(a.pos[0], c.pos[0]);
}

// --- helpers -----------------------------------------------------------------

/// Run `factory`-built state for `steps` steps on `nprocs` ranks with an
/// optional scripted resize, returning nothing; assertions run inside.
void run_app(int nprocs, int steps, rt::StateFactory factory,
             rt::ForcedDecision forced = nullptr) {
  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = steps;
  config.forced_decision = std::move(forced);
  rt::run_malleable(universe, nullptr, config, std::move(factory), nprocs);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
}

// --- Flexible Sleep -----------------------------------------------------------

class FsChecker final : public FlexibleSleepState {
 public:
  FsChecker(FlexibleSleepConfig config, int last_step,
            std::atomic<int>& validated)
      : FlexibleSleepState(config), config_(config), last_step_(last_step),
        validated_(validated) {}
  void compute_step(const smpi::Comm& world, int step) override {
    FlexibleSleepState::compute_step(world, step);
    if (step == last_step_) {
      const rt::BlockDistribution dist(config_.array_elements, world.size());
      int bad = 0;
      for (std::size_t i = 0; i < local().size(); ++i) {
        const double want =
            expected(dist.begin(world.rank()) + i, step + 1);
        if (local()[i] != want) ++bad;
      }
      EXPECT_EQ(world.allreduce_sum(bad), 0);
      ++validated_;
    }
  }

 private:
  FlexibleSleepConfig config_;
  int last_step_;
  std::atomic<int>& validated_;
};

TEST(FlexibleSleep, ArraySurvivesExpandShrinkChain) {
  FlexibleSleepConfig config;
  config.array_elements = 103;
  std::atomic<int> validated{0};
  run_app(4, 10,
          [&] { return std::make_unique<FsChecker>(config, 9, validated); },
          [](int step, int size) -> std::optional<dmr::ResizeDecision> {
            dmr::ResizeDecision d;
            if (step == 3 && size == 4) {
              d.action = dmr::Action::Expand;
              d.new_size = 6;
              return d;
            }
            if (step == 7 && size == 6) {
              d.action = dmr::Action::Shrink;
              d.new_size = 3;
              return d;
            }
            return std::nullopt;
          });
  EXPECT_EQ(validated.load(), 3);
}

TEST(FlexibleSleep, StepCounterTravelsWithData) {
  FlexibleSleepConfig config;
  config.array_elements = 16;
  std::atomic<int> validated{0};
  // The oracle checks base + index + steps: if steps_done were lost in
  // the resize the final values would be off by the pre-resize count.
  run_app(2, 6,
          [&] { return std::make_unique<FsChecker>(config, 5, validated); },
          [](int step, int size) -> std::optional<dmr::ResizeDecision> {
            if (step == 4 && size == 2) {
              dmr::ResizeDecision d;
              d.action = dmr::Action::Expand;
              d.new_size = 4;
              return d;
            }
            return std::nullopt;
          });
  EXPECT_EQ(validated.load(), 4);
}

// --- CG -----------------------------------------------------------------------

class CgChecker final : public CgState {
 public:
  CgChecker(CgConfig config, int last_step, std::atomic<int>& validated)
      : CgState(config), last_step_(last_step), validated_(validated) {}
  void compute_step(const smpi::Comm& world, int step) override {
    CgState::compute_step(world, step);
    if (step == last_step_) {
      // After enough iterations CG's solution is the ones vector.
      int bad = 0;
      for (double v : x()) {
        if (std::fabs(v - 1.0) > 1e-6) ++bad;
      }
      EXPECT_EQ(world.allreduce_sum(bad), 0);
      EXPECT_LT(residual_norm2(world), 1e-10);
      ++validated_;
    }
  }

 private:
  int last_step_;
  std::atomic<int>& validated_;
};

TEST(Cg, ParallelSolveMatchesOracle) {
  CgConfig config;
  config.n = 48;
  std::atomic<int> validated{0};
  run_app(4, 96,
          [&] { return std::make_unique<CgChecker>(config, 95, validated); });
  EXPECT_EQ(validated.load(), 4);
}

TEST(Cg, SolveSurvivesMidIterationResize) {
  // Resize in the middle of the Krylov iteration: x, r, p and rho must
  // all transfer coherently or CG silently diverges.
  CgConfig config;
  config.n = 48;
  std::atomic<int> validated{0};
  run_app(2, 96,
          [&] { return std::make_unique<CgChecker>(config, 95, validated); },
          [](int step, int size) -> std::optional<dmr::ResizeDecision> {
            dmr::ResizeDecision d;
            if (step == 20 && size == 2) {
              d.action = dmr::Action::Expand;
              d.new_size = 6;
              return d;
            }
            if (step == 60 && size == 6) {
              d.action = dmr::Action::Shrink;
              d.new_size = 3;
              return d;
            }
            return std::nullopt;
          });
  EXPECT_EQ(validated.load(), 3);
}

// --- Jacobi ---------------------------------------------------------------------

class JacobiChecker final : public JacobiState {
 public:
  JacobiChecker(JacobiConfig config, int last_step,
                std::atomic<int>& validated)
      : JacobiState(config), last_step_(last_step), validated_(validated) {}
  void compute_step(const smpi::Comm& world, int step) override {
    JacobiState::compute_step(world, step);
    if (step == last_step_) {
      const double err = world.allreduce(
          local_error(), [](double a, double b) { return a > b ? a : b; });
      EXPECT_LT(err, 1e-8);
      ++validated_;
    }
  }

 private:
  int last_step_;
  std::atomic<int>& validated_;
};

TEST(Jacobi, ParallelConvergesToOnes) {
  JacobiConfig config;
  config.n = 40;
  std::atomic<int> validated{0};
  run_app(4, 80, [&] {
    return std::make_unique<JacobiChecker>(config, 79, validated);
  });
  EXPECT_EQ(validated.load(), 4);
}

TEST(Jacobi, ConvergesAcrossShrink) {
  JacobiConfig config;
  config.n = 40;
  std::atomic<int> validated{0};
  run_app(4, 80,
          [&] { return std::make_unique<JacobiChecker>(config, 79, validated); },
          [](int step, int size) -> std::optional<dmr::ResizeDecision> {
            if (step == 30 && size == 4) {
              dmr::ResizeDecision d;
              d.action = dmr::Action::Shrink;
              d.new_size = 2;
              return d;
            }
            return std::nullopt;
          });
  EXPECT_EQ(validated.load(), 2);
}

// --- N-body ----------------------------------------------------------------------

class NbodyChecker final : public NbodyState {
 public:
  NbodyChecker(NbodyConfig config, int last_step,
               std::vector<Particle>* final_particles, std::mutex* mu)
      : NbodyState(config), last_step_(last_step),
        final_particles_(final_particles), mu_(mu) {}
  void compute_step(const smpi::Comm& world, int step) override {
    NbodyState::compute_step(world, step);
    if (step == last_step_) {
      const auto all = world.allgatherv(std::span<const Particle>(local()));
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lock(*mu_);
        *final_particles_ = all;
      }
    }
  }

 private:
  int last_step_;
  std::vector<Particle>* final_particles_;
  std::mutex* mu_;
};

TEST(Nbody, ParallelMatchesSequentialBitExact) {
  NbodyConfig config;
  config.particles = 20;
  // Sequential oracle.
  std::vector<Particle> oracle;
  for (std::size_t i = 0; i < config.particles; ++i) {
    oracle.push_back(nbody_initial_particle(i, config));
  }
  for (int s = 0; s < 8; ++s) nbody_reference_step(oracle, config);

  std::vector<Particle> parallel;
  std::mutex mu;
  run_app(4, 8, [&] {
    return std::make_unique<NbodyChecker>(config, 7, &parallel, &mu);
  });
  ASSERT_EQ(parallel.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(parallel[i].pos[k], oracle[i].pos[k]) << "particle "
                                                             << i;
      EXPECT_DOUBLE_EQ(parallel[i].vel[k], oracle[i].vel[k]);
    }
  }
}

TEST(Nbody, ResizeDoesNotPerturbTrajectory) {
  // The headline property behind Fig. 1: DMR reconfiguration is exact —
  // the trajectory with a mid-run 4 -> 2 -> 6 resize chain is bit-equal
  // to the sequential one.
  NbodyConfig config;
  config.particles = 18;
  std::vector<Particle> oracle;
  for (std::size_t i = 0; i < config.particles; ++i) {
    oracle.push_back(nbody_initial_particle(i, config));
  }
  for (int s = 0; s < 10; ++s) nbody_reference_step(oracle, config);

  std::vector<Particle> parallel;
  std::mutex mu;
  run_app(4, 10,
          [&] { return std::make_unique<NbodyChecker>(config, 9, &parallel, &mu); },
          [](int step, int size) -> std::optional<dmr::ResizeDecision> {
            dmr::ResizeDecision d;
            if (step == 3 && size == 4) {
              d.action = dmr::Action::Shrink;
              d.new_size = 2;
              return d;
            }
            if (step == 6 && size == 2) {
              d.action = dmr::Action::Expand;
              d.new_size = 6;
              return d;
            }
            return std::nullopt;
          });
  ASSERT_EQ(parallel.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(parallel[i].pos[k], oracle[i].pos[k]) << "particle "
                                                             << i;
      EXPECT_DOUBLE_EQ(parallel[i].vel[k], oracle[i].vel[k]);
    }
  }
}

// --- performance models -------------------------------------------------------

TEST(Models, CgSpeedupShape) {
  EXPECT_DOUBLE_EQ(cg_speedup(1), 1.0);
  EXPECT_GT(cg_speedup(32), cg_speedup(16));
  EXPECT_GT(cg_speedup(16), cg_speedup(8));
  // Sweet spot: < 10% per doubling past 8.
  EXPECT_LT(cg_speedup(16) / cg_speedup(8), 1.10);
  EXPECT_LT(cg_speedup(32) / cg_speedup(16), 1.10);
  // But healthy scaling below 8.
  EXPECT_GT(cg_speedup(8) / cg_speedup(4), 1.5);
}

TEST(Models, NbodyNearlyFlat) {
  EXPECT_DOUBLE_EQ(nbody_speedup(1), 1.0);
  EXPECT_LT(nbody_speedup(16), 1.10);           // < 10% over sequential
  EXPECT_DOUBLE_EQ(nbody_speedup(32), nbody_speedup(16));  // capped at 16
}

TEST(Models, TableOneParameters) {
  const AppModel cg = cg_model();
  EXPECT_EQ(cg.iterations, 10000);
  EXPECT_EQ(cg.request.min_procs, 2);
  EXPECT_EQ(cg.request.max_procs, 32);
  EXPECT_EQ(cg.request.preferred, 8);
  EXPECT_DOUBLE_EQ(cg.sched_period, 15.0);

  const AppModel nb = nbody_model();
  EXPECT_EQ(nb.iterations, 25);
  EXPECT_EQ(nb.request.min_procs, 1);
  EXPECT_EQ(nb.request.max_procs, 16);
  EXPECT_EQ(nb.request.preferred, 1);

  const AppModel fs = fs_model(25, 4, 10.0, 20, 1 << 30);
  EXPECT_EQ(fs.request.max_procs, 20);
  EXPECT_EQ(fs.request.preferred, 0);
}

TEST(Models, FsPerfectLinearScaling) {
  const AppModel fs = fs_model(2, 8, 30.0, 20, 1 << 20);
  EXPECT_DOUBLE_EQ(fs.step_seconds(8), 30.0);
  EXPECT_DOUBLE_EQ(fs.step_seconds(16), 15.0);
  EXPECT_DOUBLE_EQ(fs.step_seconds(4), 60.0);
}

TEST(Models, StepTimesMonotoneInProcs) {
  for (const AppModel& model : {cg_model(), jacobi_model(), nbody_model()}) {
    for (int p = 1; p < 32; p *= 2) {
      EXPECT_GE(model.step_seconds(p), model.step_seconds(p * 2))
          << model.name << " at p=" << p;
    }
  }
}

}  // namespace
