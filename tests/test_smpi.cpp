// Tests for the in-process message-passing substrate: mailbox matching
// semantics, point-to-point ordering, collectives, and comm_spawn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "smpi/mailbox.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr::smpi;

Envelope make_envelope(int src, int tag, std::vector<int> payload) {
  Envelope e;
  e.source = src;
  e.tag = tag;
  e.data.resize(payload.size() * sizeof(int));
  std::memcpy(e.data.data(), payload.data(), e.data.size());
  return e;
}

TEST(Mailbox, FifoPerSourceAndTag) {
  Mailbox box;
  box.deposit(make_envelope(0, 1, {10}));
  box.deposit(make_envelope(0, 1, {20}));
  const Envelope first = box.receive(0, 1);
  const Envelope second = box.receive(0, 1);
  int v0, v1;
  std::memcpy(&v0, first.data.data(), sizeof(int));
  std::memcpy(&v1, second.data.data(), sizeof(int));
  EXPECT_EQ(v0, 10);
  EXPECT_EQ(v1, 20);
}

TEST(Mailbox, TagSelectivity) {
  Mailbox box;
  box.deposit(make_envelope(0, 5, {50}));
  box.deposit(make_envelope(0, 3, {30}));
  const Envelope got = box.receive(0, 3);
  EXPECT_EQ(got.tag, 3);
  EXPECT_EQ(box.queued(), 1u);
}

TEST(Mailbox, AnySourceAnyTag) {
  Mailbox box;
  box.deposit(make_envelope(2, 9, {1}));
  const Envelope got = box.receive(kAnySource, kAnyTag);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(got.tag, 9);
}

TEST(Mailbox, PostedReceiveCompletedByDeposit) {
  Mailbox box;
  Request req = box.post_receive(1, 7);
  EXPECT_FALSE(req.test());
  box.deposit(make_envelope(1, 7, {99}));
  EXPECT_TRUE(req.test());
  const auto data = req.take<int>();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], 99);
}

TEST(Mailbox, PostedReceivesMatchInPostingOrder) {
  Mailbox box;
  Request first = box.post_receive(0, kAnyTag);
  Request second = box.post_receive(0, kAnyTag);
  box.deposit(make_envelope(0, 1, {1}));
  box.deposit(make_envelope(0, 2, {2}));
  EXPECT_EQ(first.take<int>()[0], 1);
  EXPECT_EQ(second.take<int>()[0], 2);
}

TEST(Mailbox, ProbeDoesNotConsume) {
  Mailbox box;
  EXPECT_FALSE(box.probe(0, 0));
  box.deposit(make_envelope(0, 0, {5}));
  Status status;
  EXPECT_TRUE(box.probe(0, 0, &status));
  EXPECT_EQ(status.bytes, sizeof(int));
  EXPECT_EQ(box.queued(), 1u);
}

TEST(Universe, WorldSizeAndRanks) {
  Universe universe;
  std::atomic<int> rank_sum{0};
  universe.launch("t", 4, [&](Context& ctx) {
    EXPECT_EQ(ctx.size(), 4);
    rank_sum += ctx.rank();
  });
  universe.await_all();
  EXPECT_EQ(rank_sum.load(), 6);
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, SendRecvValue) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.world().send_value(1, 10, 12345);
    } else {
      EXPECT_EQ(ctx.world().recv_value<int>(0, 10), 12345);
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, MessagesBetweenSamePairStayOrdered) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 100; ++i) ctx.world().send_value(1, 4, i);
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(ctx.world().recv_value<int>(0, 4), i);
      }
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, IsendIrecvWaitall) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < 8; ++i) {
        const double v = i * 1.5;
        reqs.push_back(ctx.world().isend(1, i, std::span<const double>(&v, 1)));
      }
      wait_all(reqs);
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < 8; ++i) reqs.push_back(ctx.world().irecv(0, i));
      for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(reqs[static_cast<size_t>(i)].take<double>()[0],
                         i * 1.5);
      }
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, RecvStatusReportsSourceTagBytes) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<int> payload{1, 2, 3};
      ctx.world().send(1, 42, std::span<const int>(payload));
    } else {
      Status status;
      const auto data = ctx.world().recv<int>(kAnySource, kAnyTag, &status);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 42);
      EXPECT_EQ(status.bytes, 3 * sizeof(int));
      EXPECT_EQ(data.size(), 3u);
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, RankOutOfRangeThrows) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.world().send_value(5, 0, 1), RankError);
      EXPECT_THROW(ctx.world().recv_value<int>(-2, 0), RankError);
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Collectives, Barrier) {
  Universe universe;
  std::atomic<int> before{0}, after{0};
  universe.launch("t", 4, [&](Context& ctx) {
    ++before;
    ctx.world().barrier();
    EXPECT_EQ(before.load(), 4);
    ++after;
  });
  universe.await_all();
  EXPECT_EQ(after.load(), 4);
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Collectives, BcastResizesReceivers) {
  Universe universe;
  universe.launch("t", 3, [](Context& ctx) {
    std::vector<int> data;
    if (ctx.rank() == 1) data = {7, 8, 9};
    ctx.world().bcast(data, 1);
    EXPECT_EQ(data, (std::vector<int>{7, 8, 9}));
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Collectives, ReduceAndAllreduce) {
  Universe universe;
  universe.launch("t", 4, [](Context& ctx) {
    const int mine = ctx.rank() + 1;  // 1+2+3+4 = 10
    const int total = ctx.world().reduce(
        mine, [](int a, int b) { return a + b; }, 0);
    if (ctx.rank() == 0) {
      EXPECT_EQ(total, 10);
    }
    EXPECT_EQ(ctx.world().allreduce_sum(mine), 10);
    const int biggest = ctx.world().allreduce(
        mine, [](int a, int b) { return a > b ? a : b; });
    EXPECT_EQ(biggest, 4);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Collectives, GathervAllgathervScatterv) {
  Universe universe;
  universe.launch("t", 3, [](Context& ctx) {
    // Variable contributions: rank r supplies r+1 values of r.
    std::vector<int> mine(static_cast<size_t>(ctx.rank() + 1), ctx.rank());
    std::vector<int> out;
    const auto counts = ctx.world().gatherv(std::span<const int>(mine), out, 0);
    if (ctx.rank() == 0) {
      EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 3}));
      EXPECT_EQ(out, (std::vector<int>{0, 1, 1, 2, 2, 2}));
    }
    const auto everywhere = ctx.world().allgatherv(std::span<const int>(mine));
    EXPECT_EQ(everywhere, (std::vector<int>{0, 1, 1, 2, 2, 2}));
    std::vector<std::vector<int>> chunks;
    if (ctx.rank() == 0) chunks = {{10}, {20, 21}, {30, 31, 32}};
    const auto chunk = ctx.world().scatterv(chunks, 0);
    EXPECT_EQ(chunk.size(), static_cast<size_t>(ctx.rank() + 1));
    EXPECT_EQ(chunk[0], (ctx.rank() + 1) * 10);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Spawn, ParentAndChildExchange) {
  Universe universe;
  std::atomic<int> child_checks{0};
  universe.launch("parent", 2, [&](Context& ctx) {
    const Comm inter = ctx.spawn(ctx.world(), 3, [&](Context& child) {
      ASSERT_TRUE(child.parent().has_value());
      EXPECT_EQ(child.parent()->remote_size(), 2);
      EXPECT_FALSE(child.parent()->is_inter() == false);
      const int v = child.parent()->recv_value<int>(0, 1);
      EXPECT_EQ(v, 777);
      child.parent()->send_value(0, 2, child.rank() + 100);
      ++child_checks;
    });
    EXPECT_TRUE(inter.is_inter());
    EXPECT_EQ(inter.remote_size(), 3);
    if (ctx.rank() == 0) {
      for (int r = 0; r < 3; ++r) inter.send_value(r, 1, 777);
      int sum = 0;
      for (int r = 0; r < 3; ++r) sum += inter.recv_value<int>(r, 2);
      EXPECT_EQ(sum, 100 + 101 + 102);
    }
  });
  universe.await_all();
  EXPECT_EQ(child_checks.load(), 3);
  EXPECT_TRUE(universe.failures().empty());
  EXPECT_EQ(universe.spawn_count(), 1);
  EXPECT_EQ(universe.total_ranks_launched(), 5);
}

TEST(Spawn, TopLevelHasNoParent) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    EXPECT_FALSE(ctx.parent().has_value());
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Spawn, ChainOfGenerations) {
  // A set spawns a smaller set which spawns a bigger one: the malleability
  // pattern (shrink then expand) at substrate level.
  Universe universe;
  std::atomic<int> final_world{0};
  universe.launch("g0", 4, [&](Context& ctx) {
    ctx.spawn(ctx.world(), 2, [&](Context& g1) {
      g1.spawn(g1.world(), 6, [&](Context& g2) {
        if (g2.rank() == 0) final_world = g2.size();
      });
    });
  });
  universe.await_all();
  EXPECT_EQ(final_world.load(), 6);
  EXPECT_EQ(universe.total_ranks_launched(), 12);
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Spawn, HostsPropagate) {
  Universe universe;
  universe.launch("t", 1, [](Context& ctx) {
    const Comm inter = ctx.spawn(
        ctx.world(), 2,
        [](Context& child) {
          ASSERT_EQ(child.hosts().size(), 2u);
          EXPECT_EQ(child.hosts()[0], "nodeA");
          EXPECT_EQ(child.hosts()[1], "nodeB");
        },
        {"nodeA", "nodeB"});
    (void)inter;
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

TEST(Universe, EntryExceptionsBecomeFailures) {
  Universe universe;
  universe.launch("t", 2, [](Context& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("boom");
  });
  universe.await_all();
  const auto failures = universe.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("boom"), std::string::npos);
  EXPECT_NE(failures[0].find("rank 1"), std::string::npos);
}

TEST(Collectives, InterCommRejectsCollectives) {
  Universe universe;
  universe.launch("t", 1, [](Context& ctx) {
    const Comm inter = ctx.spawn(ctx.world(), 1, [](Context&) {});
    EXPECT_THROW(inter.barrier(), SmpiError);
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

}  // namespace
