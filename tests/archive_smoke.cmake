# ctest smoke for the archive-scale replay path: synthesize a 100k-job
# SWF trace with make_swf, then replay it through swf_replay with the
# runtime invariant auditor attached.  Deterministic end to end (the
# trace is fully determined by the make_swf flags), so a hang or an
# auditor violation here points at the event engine, not the workload.
# Invoked as
#   cmake -DMAKE_SWF=<make_swf> -DSWF_REPLAY=<swf_replay>
#         -DWORK_DIR=<build dir> -P archive_smoke.cmake

set(trace "${WORK_DIR}/archive_smoke.swf")

execute_process(COMMAND ${MAKE_SWF} --jobs 100000 --nodes 1024 --seed 1
                        -o ${trace}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "make_swf exited with ${rc}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "make_swf: 100000 jobs on 1024 nodes")
  message(FATAL_ERROR "missing make_swf summary on stderr:\n${err}")
endif()

execute_process(COMMAND ${SWF_REPLAY} ${trace} --nodes 1024 --audit
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "swf_replay exited with ${rc}\nstderr:\n${err}")
endif()

# All 100k records are completed jobs on a machine they fit — the shaper
# must keep every one of them, and both audited replays must be clean.
if(NOT out MATCHES "parsed 100000 jobs")
  message(FATAL_ERROR "expected 100000 parsed jobs:\n${out}")
endif()
if(NOT out MATCHES "kept 100000")
  message(FATAL_ERROR "shaper dropped records from a complete trace:\n${out}")
endif()
foreach(label "audit \\(fixed\\)" "audit \\(flexible\\)")
  if(NOT out MATCHES "${label}: *\\{\"report\":\"chk\",\"ok\":true")
    message(FATAL_ERROR "missing clean ${label} report:\n${out}")
  endif()
endforeach()

file(REMOVE ${trace})
message(STATUS "archive_smoke: 100000-job replay audited clean")
