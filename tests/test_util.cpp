// Unit tests for dmr::util — RNG determinism and distribution moments,
// statistics, tables, charts and configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/chart.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmr::util;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential_mean(10.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.15);
}

TEST(Rng, HyperexponentialMeanMatchesMixture) {
  Rng rng(42);
  RunningStats stats;
  // E = 0.7*5 + 0.3*50 = 18.5
  for (int i = 0; i < 300000; ++i) {
    stats.add(rng.hyperexponential(0.7, 5.0, 50.0));
  }
  EXPECT_NEAR(stats.mean(), 18.5, 0.5);
}

TEST(Rng, HyperexponentialIsOverdispersed) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.hyperexponential(0.8, 2.0, 40.0));
  }
  // Coefficient of variation > 1 distinguishes it from a plain
  // exponential.
  EXPECT_GT(stats.stddev() / stats.mean(), 1.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(3);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, DiscreteRejectsDegenerateInput) {
  Rng rng(1);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), std::invalid_argument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.discrete(negative), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  Rng a2(77);
  (void)a2();  // fork consumed one draw
  EXPECT_NE(child(), a());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Summary, PercentilesOfKnownData) {
  std::vector<double> data;
  for (int i = 1; i <= 100; ++i) data.push_back(i);
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(Summary, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.99, 10.0, -0.1}) h.add(x);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableWriter, RejectsArityMismatch) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableWriter, CsvQuoting) {
  TableWriter t({"x"});
  t.add_row({"has,comma"});
  EXPECT_NE(t.render_csv().find("\"has,comma\""), std::string::npos);
}

TEST(TableWriter, CellFormatting) {
  EXPECT_EQ(TableWriter::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::cell(42ll), "42");
  EXPECT_EQ(TableWriter::percent(0.4649, 2), "46.49%");
}

TEST(StepSeries, ValueAtAndAverage) {
  StepSeries s;
  s.add_point(0.0, 0.0);
  s.add_point(10.0, 4.0);
  s.add_point(20.0, 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 4.0);
  EXPECT_DOUBLE_EQ(s.value_at(15.0), 4.0);
  EXPECT_DOUBLE_EQ(s.value_at(25.0), 2.0);
  // [0,30]: 10s at 0 + 10s at 4 + 10s at 2 = 60/30 = 2
  EXPECT_NEAR(s.average(0.0, 30.0), 2.0, 1e-12);
}

TEST(StepSeries, RejectsNonMonotoneTime) {
  StepSeries s;
  s.add_point(5.0, 1.0);
  EXPECT_THROW(s.add_point(4.0, 2.0), std::invalid_argument);
}

TEST(StepSeries, SameInstantCollapses) {
  StepSeries s;
  s.add_point(1.0, 1.0);
  s.add_point(1.0, 3.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 3.0);
}

TEST(TimeSeriesChart, RendersAllSeries) {
  StepSeries s;
  s.add_point(0.0, 1.0);
  s.add_point(50.0, 5.0);
  TimeSeriesChart chart(100.0, 40, 4);
  chart.add_series("allocated", s);
  const std::string out = chart.render();
  EXPECT_NE(out.find("allocated"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Config, EnvRoundTrip) {
  set_env("DMR_TEST_KEY", "42");
  EXPECT_EQ(env_int("DMR_TEST_KEY", 0), 42);
  EXPECT_DOUBLE_EQ(env_double("DMR_TEST_KEY", 0.0), 42.0);
  set_env("DMR_TEST_KEY", "not-a-number");
  EXPECT_EQ(env_int("DMR_TEST_KEY", 7), 7);
  unset_env("DMR_TEST_KEY");
  EXPECT_FALSE(env_string("DMR_TEST_KEY").has_value());
}

TEST(Config, BoolParsing) {
  set_env("DMR_TEST_BOOL", "true");
  EXPECT_TRUE(env_bool("DMR_TEST_BOOL", false));
  set_env("DMR_TEST_BOOL", "0");
  EXPECT_FALSE(env_bool("DMR_TEST_BOOL", true));
  set_env("DMR_TEST_BOOL", "garbage");
  EXPECT_TRUE(env_bool("DMR_TEST_BOOL", true));
  unset_env("DMR_TEST_BOOL");
}

TEST(Config, KeyValueParsing) {
  const auto kv = parse_key_value("nodes=64");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->first, "nodes");
  EXPECT_EQ(kv->second, "64");
  EXPECT_FALSE(parse_key_value("no-equals").has_value());
  EXPECT_FALSE(parse_key_value("=value").has_value());
}

TEST(Log, SinkCapturesAtLevel) {
  auto& logger = Logger::instance();
  const LogLevel saved = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](std::string_view line) { lines.emplace_back(line); });
  logger.set_level(LogLevel::Info);
  DMR_INFO("test") << "hello " << 42;
  DMR_DEBUG("test") << "filtered";
  logger.reset_sink();
  logger.set_level(saved);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[test]"), std::string::npos);
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Info);
}

}  // namespace
