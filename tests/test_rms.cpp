// Tests for the resource-manager building blocks: cluster allocation,
// malleable size arithmetic, multifactor priority and the EASY backfill
// scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "rms/cluster.hpp"
#include "rms/job.hpp"
#include "rms/priority.hpp"
#include "rms/scheduler.hpp"

namespace {

using namespace dmr::rms;

TEST(Cluster, AllocateReleaseAccounting) {
  Cluster cluster(8);
  EXPECT_EQ(cluster.idle(), 8);
  const auto nodes = cluster.allocate(1, 3);
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_EQ(cluster.idle(), 5);
  EXPECT_EQ(cluster.allocated(), 3);
  cluster.release(1, nodes);
  EXPECT_EQ(cluster.idle(), 8);
}

TEST(Cluster, AllocationIsDeterministicLowestIdFirst) {
  Cluster cluster(4);
  const auto first = cluster.allocate(1, 2);
  EXPECT_EQ(first, (std::vector<int>{0, 1}));
  cluster.release(1, {0});
  const auto second = cluster.allocate(2, 2);
  EXPECT_EQ(second, (std::vector<int>{0, 2}));
}

TEST(Cluster, OverAllocationThrows) {
  Cluster cluster(2);
  cluster.allocate(1, 2);
  EXPECT_THROW(cluster.allocate(2, 1), std::runtime_error);
}

TEST(Cluster, ReleaseForeignNodeThrows) {
  Cluster cluster(2);
  cluster.allocate(1, 1);
  EXPECT_THROW(cluster.release(2, {0}), std::runtime_error);
}

TEST(Cluster, TransferMovesOwnershipWithoutIdleChange) {
  Cluster cluster(4);
  const auto nodes = cluster.allocate(1, 2);
  cluster.transfer(1, 2, nodes);
  EXPECT_EQ(cluster.idle(), 2);
  EXPECT_EQ(cluster.nodes_of(2), nodes);
  EXPECT_TRUE(cluster.nodes_of(1).empty());
}

TEST(Cluster, DrainingFlag) {
  Cluster cluster(2);
  const auto nodes = cluster.allocate(1, 2);
  cluster.set_draining({nodes[1]}, true);
  EXPECT_FALSE(cluster.node(nodes[0]).draining);
  EXPECT_TRUE(cluster.node(nodes[1]).draining);
}

TEST(JobSizes, ExpandCandidatesFactor2) {
  EXPECT_EQ(expand_candidates(4, 2, 20), (std::vector<int>{8, 16}));
  EXPECT_EQ(expand_candidates(3, 2, 20), (std::vector<int>{6, 12}));
  EXPECT_TRUE(expand_candidates(16, 2, 20).empty());
}

TEST(JobSizes, ShrinkCandidatesExactDivisorsOnly) {
  EXPECT_EQ(shrink_candidates(8, 2, 1), (std::vector<int>{4, 2, 1}));
  EXPECT_EQ(shrink_candidates(8, 2, 2), (std::vector<int>{4, 2}));
  EXPECT_EQ(shrink_candidates(6, 2, 1), (std::vector<int>{3}));
  EXPECT_TRUE(shrink_candidates(5, 2, 1).empty());
}

TEST(JobSizes, FactorReachable) {
  EXPECT_TRUE(factor_reachable(4, 16, 2));
  EXPECT_TRUE(factor_reachable(16, 4, 2));
  EXPECT_TRUE(factor_reachable(8, 8, 2));
  EXPECT_FALSE(factor_reachable(4, 12, 2));
  EXPECT_FALSE(factor_reachable(6, 4, 2));
  EXPECT_TRUE(factor_reachable(3, 27, 3));
}

TEST(JobSizes, RejectBadArguments) {
  EXPECT_THROW(expand_candidates(0, 2, 8), std::invalid_argument);
  EXPECT_THROW(shrink_candidates(4, 1, 1), std::invalid_argument);
}

Job make_job(JobId id, int nodes, double submit, double qos = 0.0) {
  Job job;
  job.id = id;
  job.spec.name = "j" + std::to_string(id);
  job.spec.requested_nodes = nodes;
  job.spec.min_nodes = 1;
  job.spec.max_nodes = nodes;
  job.spec.qos = qos;
  job.spec.time_limit = 100.0;
  job.requested_nodes = nodes;
  job.submit_time = submit;
  return job;
}

TEST(Priority, AgeRaisesPriority) {
  PriorityWeights weights;
  const Job old_job = make_job(1, 2, 0.0);
  const Job new_job = make_job(2, 2, 500.0);
  const double now = 1000.0;
  EXPECT_GT(job_priority(old_job, now, weights),
            job_priority(new_job, now, weights));
}

TEST(Priority, QosDominatesAge) {
  PriorityWeights weights;
  const Job aged = make_job(1, 2, 0.0);
  const Job qos = make_job(2, 2, 900.0, /*qos=*/5.0);
  EXPECT_GT(job_priority(qos, 1000.0, weights),
            job_priority(aged, 1000.0, weights));
}

TEST(Priority, BoostSortsFirst) {
  Job a = make_job(1, 2, 0.0);
  Job b = make_job(2, 2, 900.0);
  b.priority_boost = true;
  const PendingOrder order{1000.0, PriorityWeights{}};
  EXPECT_TRUE(order(&b, &a));
  EXPECT_FALSE(order(&a, &b));
}

TEST(Priority, FifoTieBreak) {
  const Job a = make_job(1, 2, 10.0);
  const Job b = make_job(2, 2, 20.0);
  const PendingOrder order{20.0, PriorityWeights{}};
  EXPECT_TRUE(order(&a, &b));
}

TEST(Scheduler, StartsJobsThatFit) {
  Job a = make_job(1, 3, 0.0);
  Job b = make_job(2, 4, 1.0);
  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 8;
  view.pending = {&a, &b};
  const auto started = schedule_pass(view, SchedulerConfig{});
  EXPECT_EQ(started.size(), 2u);
}

TEST(Scheduler, NeverOverAllocates) {
  Job a = make_job(1, 3, 0.0);
  Job b = make_job(2, 4, 1.0);
  Job c = make_job(3, 2, 2.0);
  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 5;
  view.pending = {&a, &b, &c};
  const auto started = schedule_pass(view, SchedulerConfig{});
  int total = 0;
  for (const Job* job : started) total += job->requested_nodes;
  EXPECT_LE(total, 5);
}

TEST(Scheduler, BackfillFillsAroundBlockedHead) {
  // Head needs 8 (blocked); small short job fits idle 4 and finishes
  // before the shadow time -> backfilled.
  Job running = make_job(10, 4, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.spec.time_limit = 100.0;
  running.nodes = {0, 1, 2, 3};

  Job head = make_job(1, 8, 1.0);
  Job small = make_job(2, 4, 2.0);
  small.spec.time_limit = 50.0;  // ends before shadow (t=100)

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 4;
  view.pending = {&head, &small};
  view.running = {&running};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 2);
}

TEST(Scheduler, BackfillNeverDelaysHead) {
  // A long small job that would still be running at the shadow time and
  // would steal reserved nodes must NOT be backfilled.
  Job running = make_job(10, 4, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.spec.time_limit = 100.0;
  running.nodes = {0, 1, 2, 3};

  Job head = make_job(1, 8, 1.0);
  Job greedy = make_job(2, 4, 2.0);
  greedy.spec.time_limit = 1000.0;  // overlaps the reservation

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 4;
  view.pending = {&head, &greedy};
  view.running = {&running};
  const auto started = schedule_pass(view, SchedulerConfig{});
  EXPECT_TRUE(started.empty());
}

TEST(Scheduler, BackfillUsesWindowBeyondHeadNeed) {
  // 12 idle + 4 released at t=100; head needs 14 -> shadow t=100 with
  // extra = 2.  A long 2-node job fits the window and may backfill.
  Job running = make_job(10, 4, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.spec.time_limit = 100.0;
  running.nodes = {0, 1, 2, 3};

  Job head = make_job(1, 14, 1.0);
  Job windowed = make_job(2, 2, 2.0);
  windowed.spec.time_limit = 10000.0;

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 12;
  view.pending = {&head, &windowed};
  view.running = {&running};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 2);
}

TEST(Scheduler, NoBackfillWhenDisabled) {
  Job running = make_job(10, 4, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.nodes = {0, 1, 2, 3};
  Job head = make_job(1, 8, 1.0);
  Job small = make_job(2, 2, 2.0);
  small.spec.time_limit = 1.0;

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 4;
  view.pending = {&head, &small};
  view.running = {&running};
  SchedulerConfig config;
  config.backfill = false;
  EXPECT_TRUE(schedule_pass(view, config).empty());
}

TEST(Scheduler, PriorityOrderRespected) {
  Job low = make_job(1, 4, 0.0);
  Job boosted = make_job(2, 4, 100.0);
  boosted.priority_boost = true;
  ScheduleView view;
  view.now = 200.0;
  view.idle_nodes = 4;
  view.pending = {&low, &boosted};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 2);
}

TEST(Scheduler, PassWithZeroIdleNodesStartsNothing) {
  Job running = make_job(10, 8, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  Job a = make_job(1, 4, 1.0);
  Job b = make_job(2, 1, 2.0);
  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 0;
  view.pending = {&a, &b};
  view.running = {&running};
  EXPECT_TRUE(schedule_pass(view, SchedulerConfig{}).empty());
}

TEST(Scheduler, BackfillNeverDelaysBoostedHead) {
  // A shrink boosted the late 4-node job to the queue head; a greedy
  // long job that would squat on the head's reservation must not start.
  Job running = make_job(10, 4, 0.0);
  running.state = JobState::Running;
  running.start_time = 0.0;
  running.spec.time_limit = 100.0;
  running.nodes = {0, 1, 2, 3};

  Job boosted = make_job(1, 8, 50.0);
  boosted.priority_boost = true;
  Job greedy = make_job(2, 4, 2.0);
  greedy.spec.time_limit = 1000.0;
  Job small = make_job(3, 4, 3.0);
  small.spec.time_limit = 30.0;  // ends before the shadow at t=100

  ScheduleView view;
  view.now = 60.0;
  view.idle_nodes = 4;
  view.pending = {&greedy, &boosted, &small};
  view.running = {&running};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 3);
}

TEST(Scheduler, ShadowTreatsDrainingNodesAsImminentRelease) {
  // Job 10 is shrinking: nodes 2 and 3 drain as soon as the protocol
  // completes, not at start_time + time_limit.
  Job shrinking = make_job(10, 4, 0.0);
  shrinking.state = JobState::Running;
  shrinking.start_time = 0.0;
  shrinking.spec.time_limit = 1000.0;
  shrinking.nodes = {0, 1, 2, 3};

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 0;
  view.running = {&shrinking};
  view.node_draining = {0, 0, 1, 1};
  int extra = -1;
  EXPECT_DOUBLE_EQ(shadow_time(view, 2, &extra), 10.0);
  EXPECT_EQ(extra, 0);
  // The surviving half still releases at the time limit.
  EXPECT_DOUBLE_EQ(shadow_time(view, 4, &extra), 1000.0);
}

TEST(Scheduler, BackfillDoesNotSquatOnDrainReleasedNodes) {
  // 6 nodes: a hog holds 4 (2 draining, long time limit), 2 idle.  The
  // head needs 4 and will get them as soon as the drain completes; a
  // long 2-node job must not grab the idle nodes and delay it.  Before
  // the drain-aware shadow fix the reservation sat at the hog's time
  // limit and the greedy job backfilled.
  Job hog = make_job(10, 4, 0.0);
  hog.state = JobState::Running;
  hog.start_time = 0.0;
  hog.spec.time_limit = 1000.0;
  hog.nodes = {0, 1, 2, 3};

  Job head = make_job(1, 4, 1.0);
  Job greedy = make_job(2, 2, 2.0);
  greedy.spec.time_limit = 500.0;

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 2;
  view.pending = {&head, &greedy};
  view.running = {&hog};
  view.node_draining = {0, 0, 1, 1, 0, 0};
  EXPECT_TRUE(schedule_pass(view, SchedulerConfig{}).empty());
}

TEST(Cluster, HeterogeneousPartitions) {
  Cluster cluster({Partition{"fast", 4, 1.0}, Partition{"slow", 2, 0.5}});
  EXPECT_EQ(cluster.size(), 6);
  EXPECT_EQ(cluster.partition_count(), 2);
  EXPECT_EQ(cluster.partition_index("slow"), 1);
  EXPECT_EQ(cluster.partition_index("nope"), kAnyPartition);
  EXPECT_EQ(cluster.node_name(0), "fast0");
  EXPECT_EQ(cluster.node_name(4), "slow0");
  EXPECT_EQ(cluster.idle_in(0), 4);
  EXPECT_EQ(cluster.idle_in(1), 2);
  EXPECT_DOUBLE_EQ(cluster.node(5).speed, 0.5);
  EXPECT_DOUBLE_EQ(cluster.min_speed({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cluster.min_speed({0, 5}), 0.5);
}

TEST(Cluster, PartitionConstrainedAllocation) {
  Cluster cluster({Partition{"fast", 4, 1.0}, Partition{"slow", 2, 0.5}});
  const auto slow = cluster.allocate(1, 2, 1);
  EXPECT_EQ(slow, (std::vector<int>{4, 5}));
  EXPECT_EQ(cluster.idle_in(1), 0);
  EXPECT_EQ(cluster.idle(), 4);
  EXPECT_THROW(cluster.allocate(2, 1, 1), std::runtime_error);
  // Unconstrained allocation draws from the remaining partition.
  const auto any = cluster.allocate(2, 3, kAnyPartition);
  EXPECT_EQ(any, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cluster.idle_in(0), 1);
  cluster.release(1, slow);
  EXPECT_EQ(cluster.idle_in(1), 2);
}

TEST(Cluster, DrainingCountTracksFlags) {
  Cluster cluster(4);
  const auto nodes = cluster.allocate(1, 3);
  EXPECT_EQ(cluster.draining_count(), 0);
  cluster.set_draining({nodes[0], nodes[1]}, true);
  cluster.set_draining({nodes[1]}, true);  // idempotent
  EXPECT_EQ(cluster.draining_count(), 2);
  const auto flags = cluster.draining_flags();
  EXPECT_EQ(flags[0], 1);
  EXPECT_EQ(flags[2], 0);
  cluster.release(1, {nodes[0]});
  EXPECT_EQ(cluster.draining_count(), 1);
  cluster.set_draining({nodes[1]}, false);
  EXPECT_EQ(cluster.draining_count(), 0);
}

ScheduleView heterogeneous_view(double now) {
  // 4 fast nodes (0-3), 2 slow nodes (4-5), all idle.
  ScheduleView view;
  view.now = now;
  view.idle_nodes = 6;
  view.node_partition = {0, 0, 0, 0, 1, 1};
  view.idle_per_partition = {4, 2};
  view.idle_node_ids = {0, 1, 2, 3, 4, 5};
  return view;
}

TEST(Scheduler, PartitionConstrainedJobWaitsForItsPartition) {
  // The slow partition only has 2 nodes: a 3-node job pinned there must
  // not start even though the cluster has 6 idle nodes overall.
  Job pinned = make_job(1, 3, 0.0);
  pinned.partition = 1;
  ScheduleView view = heterogeneous_view(10.0);
  view.pending = {&pinned};
  EXPECT_TRUE(schedule_pass(view, SchedulerConfig{}).empty());
}

TEST(Scheduler, DisjointPartitionBackfillsPastBlockedHead) {
  // Head pinned to the full fast partition; a job pinned to the slow
  // partition cannot delay it and starts immediately, however long it
  // runs.
  Job hog = make_job(10, 4, 0.0);
  hog.state = JobState::Running;
  hog.start_time = 0.0;
  hog.spec.time_limit = 100.0;
  hog.nodes = {0, 1, 2, 3};
  hog.partition = 0;

  Job head = make_job(1, 4, 1.0);
  head.partition = 0;
  Job other = make_job(2, 2, 2.0);
  other.partition = 1;
  other.spec.time_limit = 100000.0;

  ScheduleView view = heterogeneous_view(10.0);
  view.idle_nodes = 2;
  view.idle_per_partition = {0, 2};
  view.idle_node_ids = {4, 5};
  view.pending = {&head, &other};
  view.running = {&hog};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 2);
}

TEST(Scheduler, SpanningJobChargedAgainstHeadPoolWindow) {
  // Head pinned to fast (all 4 busy until t=100); an unconstrained long
  // 2-node job would take slow nodes first (lowest ids available are
  // slow here) — it only overlaps the head's pool if it draws fast
  // nodes.  With the fast partition fully busy and idle nodes only in
  // slow, the overlap is zero and the job may start.
  Job hog = make_job(10, 4, 0.0);
  hog.state = JobState::Running;
  hog.start_time = 0.0;
  hog.spec.time_limit = 100.0;
  hog.nodes = {0, 1, 2, 3};
  hog.partition = 0;

  Job head = make_job(1, 2, 1.0);
  head.partition = 0;
  Job spanning = make_job(2, 2, 2.0);
  spanning.spec.time_limit = 100000.0;  // far past the shadow

  ScheduleView view = heterogeneous_view(10.0);
  view.idle_nodes = 2;
  view.idle_per_partition = {0, 2};
  view.idle_node_ids = {4, 5};
  view.pending = {&head, &spanning};
  view.running = {&hog};
  const auto started = schedule_pass(view, SchedulerConfig{});
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->id, 2);
}

TEST(Scheduler, ShadowTimePerPool) {
  // Fast pool: hog releases 4 at t=100.  Slow pool: free already.
  Job hog = make_job(10, 4, 0.0);
  hog.state = JobState::Running;
  hog.start_time = 0.0;
  hog.spec.time_limit = 100.0;
  hog.nodes = {0, 1, 2, 3};
  hog.partition = 0;

  ScheduleView view = heterogeneous_view(10.0);
  view.idle_nodes = 2;
  view.idle_per_partition = {0, 2};
  view.idle_node_ids = {4, 5};
  view.running = {&hog};
  int extra = -1;
  EXPECT_DOUBLE_EQ(shadow_time(view, 4, &extra, /*pool=*/0), 100.0);
  EXPECT_EQ(extra, 0);
  EXPECT_DOUBLE_EQ(shadow_time(view, 2, &extra, /*pool=*/1), 10.0);
  EXPECT_TRUE(std::isinf(shadow_time(view, 3, &extra, /*pool=*/1)));
}

TEST(Cluster, PackAllocationPicksBestFitPartition) {
  Cluster cluster({Partition{"a", 4, 1.0}, Partition{"b", 2, 1.0},
                   Partition{"c", 8, 1.0}});
  cluster.set_alloc_policy(AllocPolicy::Pack);
  // 2 nodes fit whole into the fullest partition that holds them: b.
  EXPECT_EQ(cluster.allocate(1, 2), (std::vector<int>{4, 5}));
  // 3 nodes now best-fit a (4 idle beats c's 8).
  EXPECT_EQ(cluster.allocate(2, 3), (std::vector<int>{0, 1, 2}));
  // 9 nodes fit nowhere whole: span descending idle — c (8), then a (1).
  EXPECT_EQ(cluster.allocate(3, 9),
            (std::vector<int>{6, 7, 8, 9, 10, 11, 12, 13, 3}));
}

TEST(Cluster, PackKeepsWholePartitionsFreeForPinnedJobs) {
  // LowestId fragments: a 2-node spanning grant takes fast0/fast1, so a
  // later 4-node fast-pinned job cannot start.
  Cluster fragmented({Partition{"fast", 4, 1.0}, Partition{"slow", 2, 0.5}});
  EXPECT_EQ(fragmented.allocate(1, 2), (std::vector<int>{0, 1}));
  EXPECT_THROW(fragmented.allocate(2, 4, 0), std::runtime_error);
  // Pack routes the spanning grant into the slow pair instead.
  Cluster packed({Partition{"fast", 4, 1.0}, Partition{"slow", 2, 0.5}});
  packed.set_alloc_policy(AllocPolicy::Pack);
  EXPECT_EQ(packed.allocate(1, 2), (std::vector<int>{4, 5}));
  EXPECT_EQ(packed.allocate(2, 4, 0), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Cluster, PackConstrainedGrantsUnchanged) {
  Cluster cluster({Partition{"fast", 4, 1.0}, Partition{"slow", 2, 0.5}});
  cluster.set_alloc_policy(AllocPolicy::Pack);
  EXPECT_EQ(cluster.allocate(1, 2, 0), (std::vector<int>{0, 1}));
}

TEST(Scheduler, PackPolicyLetsPinnedJobStartBehindSpanningOne) {
  // fast(4)/slow(2), all idle.  A 2-node spanning job followed by a
  // 4-node fast-pinned job: under LowestId the spanning job fragments
  // the fast partition and blocks the pinned head; under Pack it takes
  // the slow pair (mirroring the cluster's grant) and both start.
  Job spanning = make_job(1, 2, 0.0);
  Job pinned = make_job(2, 4, 1.0);
  pinned.partition = 0;

  ScheduleView lowest_view = heterogeneous_view(10.0);
  lowest_view.pending = {&spanning, &pinned};
  EXPECT_EQ(schedule_pass(lowest_view, SchedulerConfig{}).size(), 1u);

  ScheduleView pack_view = heterogeneous_view(10.0);
  pack_view.pending = {&spanning, &pinned};
  SchedulerConfig pack_config;
  pack_config.alloc = AllocPolicy::Pack;
  const auto started = schedule_pass(pack_view, pack_config);
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0]->id, 1);
  EXPECT_EQ(started[1]->id, 2);
}

TEST(Scheduler, ShadowTimeComputation) {
  Job r1 = make_job(1, 4, 0.0);
  r1.state = JobState::Running;
  r1.start_time = 0.0;
  r1.spec.time_limit = 50.0;
  r1.nodes = {0, 1, 2, 3};
  Job r2 = make_job(2, 4, 0.0);
  r2.state = JobState::Running;
  r2.start_time = 0.0;
  r2.spec.time_limit = 80.0;
  r2.nodes = {4, 5, 6, 7};

  ScheduleView view;
  view.now = 10.0;
  view.idle_nodes = 2;
  view.running = {&r1, &r2};
  int extra = -1;
  EXPECT_DOUBLE_EQ(shadow_time(view, 6, &extra), 50.0);
  EXPECT_EQ(extra, 0);
  EXPECT_DOUBLE_EQ(shadow_time(view, 8, &extra), 80.0);
  EXPECT_EQ(extra, 2);
  EXPECT_TRUE(std::isinf(shadow_time(view, 100, &extra)));
}

}  // namespace
