# ctest smoke for the resident service: push a small stream through the
# submission ring via service_bench's smoke mode and sanity-check the
# live sample feed — every line one JSON object, sample times strictly
# monotone in simulated time, and all three bench phases present.
# Invoked as
#   cmake -DSERVICE_BENCH=<service_bench binary> -P service_smoke.cmake

execute_process(COMMAND ${SERVICE_BENCH} smoke
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "service_bench smoke exited with ${rc}\nstderr:\n${err}")
endif()

# Every non-empty stdout line must be one JSON object; sample lines
# ("svc":"sample") must carry strictly increasing simulated times.
string(REPLACE "\n" ";" lines "${out}")
set(sample_lines 0)
set(last_time -1)
foreach(line IN LISTS lines)
  if(line STREQUAL "")
    continue()
  endif()
  if(NOT line MATCHES "^\\{.*\\}$")
    message(FATAL_ERROR "not a JSON line: ${line}")
  endif()
  if(line MATCHES "\"svc\":\"sample\"")
    math(EXPR sample_lines "${sample_lines} + 1")
    # Integer part of the simulated time (sample cadence is >= 1 s, so
    # strict monotonicity survives the truncation).
    if(NOT line MATCHES "\"t\":([0-9]+)")
      message(FATAL_ERROR "sample line without a time field: ${line}")
    endif()
    set(time "${CMAKE_MATCH_1}")
    if(NOT time GREATER last_time)
      message(FATAL_ERROR "sample times not monotone: ${last_time} then "
                          "${time} in:\n${out}")
    endif()
    set(last_time "${time}")
    foreach(field "\"window\":" "\"utilization\":" "\"queue_depth\":"
            "\"wait_p99\":" "\"submitted_total\":")
      if(NOT line MATCHES "${field}")
        message(FATAL_ERROR "sample line missing ${field}: ${line}")
      endif()
    endforeach()
    if(line MATCHES "nan|inf")
      message(FATAL_ERROR "non-finite value in sample line: ${line}")
    endif()
  endif()
endforeach()

if(sample_lines LESS 3)
  message(FATAL_ERROR "expected >= 3 sample lines, got ${sample_lines}:\n"
                      "${out}")
endif()

# The three bench phases plus the summary rode along.
foreach(field "\"phase\":\"throughput\"" "\"phase\":\"snapshot\""
        "\"phase\":\"fork\"" "\"summary\":true" "\"jobs_per_second\":")
  if(NOT out MATCHES "${field}")
    message(FATAL_ERROR "missing ${field} in service_bench output:\n${out}")
  endif()
endforeach()

message(STATUS "service_smoke: ${sample_lines} sample lines OK")
