# ctest smoke for SWF trace replay: run the bundled miniature trace
# through the sweep harness in federation mode and sanity-check the
# JSON-lines output.  Invoked as
#   cmake -DSWEEP=<sweep binary> -DSWF=<mini.swf> -P swf_replay_smoke.cmake

execute_process(COMMAND ${SWEEP} smoke clusters=2 --swf ${SWF}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep --swf exited with ${rc}\nstderr:\n${err}")
endif()

# Every non-empty stdout line must be one JSON object.
string(REPLACE "\n" ";" lines "${out}")
set(scenario_lines 0)
foreach(line IN LISTS lines)
  if(line STREQUAL "")
    continue()
  endif()
  if(NOT line MATCHES "^\\{.*\\}$")
    message(FATAL_ERROR "not a JSON line: ${line}")
  endif()
  if(line MATCHES "\"swf\":")
    math(EXPR scenario_lines "${scenario_lines} + 1")
  endif()
endforeach()

# The 2-member x 2-placement federation smoke grid: >= 2 scenario lines,
# each carrying per-member metrics and the shaping telemetry.
if(scenario_lines LESS 2)
  message(FATAL_ERROR "expected >= 2 swf scenario lines, got "
                      "${scenario_lines}:\n${out}")
endif()
foreach(field "\"swf_parsed\":24" "\"swf_kept\":21" "\"swf_dropped\":3"
        "\"swf_clamped\":" "\"utilization_alpha\":" "\"placements_beta\":"
        "\"summary\":true")
  if(NOT out MATCHES "${field}")
    message(FATAL_ERROR "missing ${field} in sweep output:\n${out}")
  endif()
endforeach()

# The shaper must announce what it dropped on stderr — truncation is
# never silent.
if(NOT err MATCHES "dropped 3")
  message(FATAL_ERROR "missing shaping summary on stderr:\n${err}")
endif()

message(STATUS "swf_replay_smoke: ${scenario_lines} scenario lines OK")
