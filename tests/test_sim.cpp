// Unit tests for the discrete-event engine and the trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace {

using namespace dmr::sim;

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SameTimeFifoBySchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // double cancel
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine engine;
  const EventId id = engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  engine.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, StopInterruptsRun) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(i + 1.0, [&] {
      if (++count == 3) engine.stop();
    });
  }
  engine.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(engine.empty());
}

TEST(Engine, StopBeforeRunHaltsBeforeFirstEvent) {
  // A stop() issued before run() used to be silently dropped by an
  // unconditional reset; it must halt the run before any event fires,
  // then be consumed so the next run proceeds.
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.stop();
  EXPECT_TRUE(engine.stop_pending());
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(engine.stop_pending());
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopBeforeRunUntilFreezesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.stop();
  EXPECT_EQ(engine.run_until(5.0), 0u);
  EXPECT_EQ(fired, 0);
  // A stopped run does not advance the clock to t_end.
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, StopDuringRunUntilFreezesClock) {
  Engine engine;
  engine.schedule_at(1.0, [&] { engine.stop(); });
  engine.schedule_at(2.0, [] {});
  EXPECT_EQ(engine.run_until(10.0), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  EXPECT_EQ(engine.run_until(10.0), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, CancelRunUntilInterleavingProperty) {
  // Randomized interleaving of schedule / cancel / run_until: exactly
  // the non-cancelled events fire, in time order, each within the
  // run_until window that covers it.
  std::mt19937 gen(20170712);
  for (int round = 0; round < 20; ++round) {
    Engine engine;
    std::uniform_real_distribution<double> time_dist(0.0, 100.0);
    std::bernoulli_distribution cancel_dist(0.3);

    struct Planned {
      double time;
      EventId id;
      bool cancelled = false;
    };
    std::vector<Planned> planned;
    std::vector<double> fired;
    for (int i = 0; i < 60; ++i) {
      const double at = time_dist(gen);
      Planned entry;
      entry.time = at;
      entry.id = engine.schedule_at(
          at, [&fired, &engine] { fired.push_back(engine.now()); });
      planned.push_back(entry);
    }
    for (auto& entry : planned) {
      if (cancel_dist(gen)) {
        EXPECT_TRUE(engine.cancel(entry.id));
        entry.cancelled = true;
      }
    }
    // Advance in random increasing steps, cancelling a few more events
    // ahead of the clock as we go.
    double t = 0.0;
    std::size_t executed = 0;
    while (t < 100.0) {
      t += std::uniform_real_distribution<double>(1.0, 30.0)(gen);
      executed += engine.run_until(t);
      for (auto& entry : planned) {
        if (!entry.cancelled && entry.time > t && cancel_dist(gen)) {
          EXPECT_TRUE(engine.cancel(entry.id));
          entry.cancelled = true;
        }
      }
    }
    executed += engine.run();

    std::vector<double> expected;
    for (const auto& entry : planned) {
      if (!entry.cancelled) expected.push_back(entry.time);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(executed, expected.size());
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(fired[i], expected[i]);
    }
    EXPECT_TRUE(engine.empty());
  }
}

TEST(Engine, RunWithLimit) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(i + 1.0, [&] { ++count; });
  }
  EXPECT_EQ(engine.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 99.0);
}

TEST(PeriodicTask, FiresUntilPredicateFalse) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 5.0, [&] { return ++fires < 4; });
  task.start(1.0);
  engine.run();
  EXPECT_EQ(fires, 4);
  EXPECT_DOUBLE_EQ(engine.now(), 16.0);  // 1, 6, 11, 16
}

TEST(PeriodicTask, StopCancelsFutureFires) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 1.0, [&] { ++fires; return true; });
  task.start(0.0);
  engine.schedule_at(3.5, [&] { task.stop(); });
  engine.run();
  EXPECT_EQ(fires, 4);  // t = 0, 1, 2, 3
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Engine engine;
  EXPECT_THROW(PeriodicTask(engine, 0.0, [] { return false; }),
               std::invalid_argument);
}

// Regression: tick k must fire at first + k*period in closed form.  The
// former `now + period` reschedule accumulated one rounding error per
// tick — with the non-representable period 0.1, a million periods
// drifted the clock visibly off k/10.
TEST(PeriodicTask, NoDriftOverAMillionPeriods) {
  Engine engine;
  constexpr std::uint64_t kTicks = 1000000;
  std::uint64_t fires = 0;
  PeriodicTask task(engine, 0.1, [&] { return ++fires < kTicks; });
  task.start(0.1);
  engine.run();
  EXPECT_EQ(fires, kTicks);
  // The closed form lands within an ulp or two of k/10; the repeated
  // `now + period` reschedule it replaced accumulated ~1e-6 of drift
  // over this horizon — six orders of magnitude past this bound.
  EXPECT_NEAR(engine.now(), static_cast<double>(kTicks) * 0.1, 1.0e-9);
}

// Eager reclamation: cancelling an event hands its slot back and, when
// cancels outnumber live events, sweeps the never-reached calendar
// entries too — queued() is exact and the footprint shrinks instead of
// retaining every far-future corpse until its day is reached.
TEST(EngineCancel, FarFutureCancelsReclaimEagerly) {
  Engine engine;
  constexpr int kEvents = 10000;
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(engine.schedule_at(1.0e9 + i, [] {}));
  }
  EXPECT_EQ(engine.queued(), static_cast<std::size_t>(kEvents));
  EXPECT_GE(engine.queue_footprint(), static_cast<std::size_t>(kEvents));
  for (const EventId id : ids) {
    EXPECT_TRUE(engine.cancel(id));
  }
  EXPECT_EQ(engine.queued(), 0u);
  // The stale-sweep bound: cancelled entries may linger only while they
  // are outnumbered by live ones (here: none) or under the sweep floor.
  EXPECT_LE(engine.queue_footprint(), 1024u);
  // The freed slots are reused, not abandoned: new events recycle the
  // same slot indices (id >> 32) instead of growing the table.
  std::uint32_t max_slot = 0;
  for (int i = 0; i < kEvents; ++i) {
    const EventId id = engine.schedule_at(2.0e9 + i, [] {});
    max_slot = std::max(max_slot, static_cast<std::uint32_t>(id >> 32));
  }
  EXPECT_LT(max_slot, static_cast<std::uint32_t>(kEvents + 1));
  EXPECT_EQ(engine.queued(), static_cast<std::size_t>(kEvents));
}

// queued() counts live events only — a cancelled entry must disappear
// from the count immediately, not at dispatch time.
TEST(EngineCancel, QueuedCountsLiveEventsExactly) {
  Engine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(engine.schedule_at(10.0 + i, [] {}));
  }
  EXPECT_EQ(engine.queued(), 5u);
  EXPECT_TRUE(engine.cancel(ids[1]));
  EXPECT_TRUE(engine.cancel(ids[3]));
  EXPECT_EQ(engine.queued(), 3u);
  std::size_t fired = 0;
  engine.schedule_at(100.0, [&] { fired = engine.executed(); });
  EXPECT_EQ(engine.queued(), 4u);
  engine.run();
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(fired, 4u);  // 3 surviving + the probe itself
}

TEST(Trace, RecordsSeriesAgainstEngineClock) {
  Engine engine;
  TraceRecorder trace(engine);
  engine.schedule_at(0.0, [&] { trace.record("alloc", 4.0); });
  engine.schedule_at(10.0, [&] { trace.record("alloc", 8.0); });
  engine.run();
  EXPECT_DOUBLE_EQ(trace.series("alloc").value_at(5.0), 4.0);
  EXPECT_DOUBLE_EQ(trace.series("alloc").value_at(10.0), 8.0);
  EXPECT_NEAR(trace.average("alloc", 0.0, 20.0), 6.0, 1e-12);
}

TEST(Trace, DeltaAccumulates) {
  Engine engine;
  TraceRecorder trace(engine);
  engine.schedule_at(1.0, [&] { trace.record_delta("done", 1.0); });
  engine.schedule_at(2.0, [&] { trace.record_delta("done", 1.0); });
  engine.run();
  EXPECT_DOUBLE_EQ(trace.series("done").value_at(3.0), 2.0);
}

TEST(Trace, UnknownSeriesThrows) {
  Engine engine;
  TraceRecorder trace(engine);
  EXPECT_THROW(trace.series("nope"), std::out_of_range);
}

TEST(Trace, CsvExport) {
  Engine engine;
  TraceRecorder trace(engine);
  engine.schedule_at(1.0, [&] { trace.record("x", 2.0); });
  engine.run();
  const std::string csv = trace.to_csv("x");
  EXPECT_NE(csv.find("time,x"), std::string::npos);
  EXPECT_NE(csv.find("1,2"), std::string::npos);
}

}  // namespace
