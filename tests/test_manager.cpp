// Integration tests of the Manager: job lifecycle, the Slurm resize
// protocol (resizer job -> harvest), two-phase shrink, dependency
// handling, and the synchronous/asynchronous DMR flows.
#include <gtest/gtest.h>

#include "rms/manager.hpp"

namespace {

using namespace dmr::rms;

JobSpec spec(const std::string& name, int nodes, int min = 1, int max = 32,
             int preferred = 0, bool flexible = true) {
  JobSpec s;
  s.name = name;
  s.requested_nodes = nodes;
  s.min_nodes = min;
  s.max_nodes = max;
  s.preferred_nodes = preferred;
  s.flexible = flexible;
  s.time_limit = 1000.0;
  return s;
}

DmrRequest request(int min, int max, int preferred = 0) {
  DmrRequest r;
  r.min_procs = min;
  r.max_procs = max;
  r.preferred = preferred;
  return r;
}

RmsConfig config(int nodes) {
  RmsConfig c;
  c.nodes = nodes;
  return c;
}

TEST(Manager, SubmitScheduleRun) {
  Manager m(config(8));
  const JobId id = m.submit(spec("a", 4), 0.0);
  EXPECT_TRUE(m.job(id).pending());
  const auto started = m.schedule(0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_TRUE(m.job(id).running());
  EXPECT_EQ(m.job(id).allocated(), 4);
  EXPECT_EQ(m.idle_nodes(), 4);
  m.job_finished(id, 10.0);
  EXPECT_EQ(m.job(id).state, JobState::Completed);
  EXPECT_EQ(m.idle_nodes(), 8);
  EXPECT_DOUBLE_EQ(m.job(id).execution_time(), 10.0);
  EXPECT_TRUE(m.all_done());
}

TEST(Manager, FifoWhenResourcesContended) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 8), 0.0);
  const JobId b = m.submit(spec("b", 8), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(a).running());
  EXPECT_TRUE(m.job(b).pending());
  m.job_finished(a, 5.0);  // triggers a pass: b starts
  EXPECT_TRUE(m.job(b).running());
  EXPECT_DOUBLE_EQ(m.job(b).wait_time(), 4.0);
}

TEST(Manager, CancelPendingAndRunning) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 4), 0.0);
  const JobId b = m.submit(spec("b", 4), 0.0);
  m.schedule(0.0);
  m.cancel(a, 1.0);
  EXPECT_EQ(m.job(a).state, JobState::Cancelled);
  m.cancel(b, 1.0);
  EXPECT_EQ(m.job(b).state, JobState::Cancelled);
  EXPECT_EQ(m.idle_nodes(), 8);
}

TEST(Manager, DependencyGatesEligibility) {
  Manager m(config(8));
  const JobId parent = m.submit(spec("p", 4), 0.0);
  JobSpec child_spec = spec("c", 2);
  child_spec.depends_on = parent;
  const JobId child = m.submit(child_spec, 0.0);
  m.schedule(0.0);
  EXPECT_TRUE(m.job(parent).running());
  EXPECT_TRUE(m.job(child).running());  // parent started in same pass

  // A dependent of a *pending* job must not start.
  const JobId parent2 = m.submit(spec("p2", 8), 1.0);
  JobSpec child2_spec = spec("c2", 1);
  child2_spec.depends_on = parent2;
  const JobId child2 = m.submit(child2_spec, 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(parent2).pending());
  EXPECT_TRUE(m.job(child2).pending());
}

TEST(Manager, DependentCancelledWithParent) {
  Manager m(config(8));
  const JobId parent = m.submit(spec("p", 4), 0.0);
  m.schedule(0.0);
  JobSpec dep = spec("d", 2);
  dep.depends_on = parent;
  const JobId child = m.submit(dep, 1.0);
  m.job_finished(parent, 2.0);
  EXPECT_EQ(m.job(child).state, JobState::Cancelled);
}

TEST(ResizeProtocol, SubmitHarvestGrow) {
  // The four Slurm steps of Section III, exercised piecewise.
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 4), 0.0);
  m.schedule(0.0);
  const JobId rj = m.submit_resizer(a, 2, 1.0);
  EXPECT_TRUE(m.job(rj).priority_boost);
  EXPECT_TRUE(m.job(rj).spec.internal_resizer);
  m.schedule(1.0);
  ASSERT_TRUE(m.job(rj).running());
  EXPECT_EQ(m.idle_nodes(), 2);
  const auto harvested = m.harvest_resizer(rj, 1.0);
  EXPECT_EQ(harvested.size(), 2u);
  EXPECT_EQ(m.job(rj).state, JobState::Cancelled);
  EXPECT_EQ(m.job(a).allocated(), 6);
  EXPECT_EQ(m.job(a).requested_nodes, 6);
  EXPECT_EQ(m.idle_nodes(), 2);  // nodes moved, not released
}

TEST(ResizeProtocol, ResizerInvisibleToMetrics) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 4), 0.0);
  m.schedule(0.0);
  m.submit_resizer(a, 2, 1.0);
  EXPECT_EQ(m.jobs().size(), 1u);
  EXPECT_TRUE(m.pending_snapshot(1.0).empty());
}

TEST(DmrCheck, ExpandWholeFlow) {
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 4), 0.0);
  m.schedule(0.0);
  const DmrOutcome outcome = m.dmr_check(a, request(1, 16), 1.0);
  EXPECT_EQ(outcome.action, Action::Expand);
  EXPECT_EQ(outcome.new_size, 16);
  EXPECT_EQ(outcome.added_nodes.size(), 12u);
  EXPECT_EQ(m.job(a).allocated(), 16);
  EXPECT_EQ(m.counters().expands, 1);
  EXPECT_EQ(m.job(a).expansions, 1);
}

TEST(DmrCheck, ShrinkTwoPhase) {
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 16, 1, 16, 4), 0.0);
  m.schedule(0.0);
  const JobId b = m.submit(spec("b", 8, 8, 8, 0, false), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(b).pending());

  const DmrOutcome outcome = m.dmr_check(a, request(1, 16, 4), 2.0);
  EXPECT_EQ(outcome.action, Action::Shrink);
  EXPECT_EQ(outcome.new_size, 4);
  EXPECT_EQ(outcome.draining_nodes.size(), 12u);
  // Nodes still attached until the drain ACKs arrive.
  EXPECT_EQ(m.job(a).allocated(), 16);
  EXPECT_TRUE(m.job(b).pending());

  m.complete_shrink(a, 3.0);
  EXPECT_EQ(m.job(a).allocated(), 4);
  // The release triggers a pass: the queued job starts.
  EXPECT_TRUE(m.job(b).running());
  EXPECT_EQ(m.counters().shrinks, 1);
}

TEST(DmrCheck, ShrinkBoostsTriggeringJob) {
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 16), 0.0);
  m.schedule(0.0);
  const JobId b = m.submit(spec("b", 12, 12, 12, 0, false), 1.0);
  m.schedule(1.0);
  const DmrOutcome outcome = m.dmr_check(a, request(1, 16), 2.0);
  EXPECT_EQ(outcome.action, Action::Shrink);
  EXPECT_EQ(outcome.boosted, b);
  EXPECT_TRUE(m.job(b).priority_boost);
}

TEST(DmrCheck, AbortShrinkRestoresNodes) {
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 16), 0.0);
  m.schedule(0.0);
  m.submit(spec("b", 8, 8, 8, 0, false), 1.0);
  const DmrOutcome outcome = m.dmr_check(a, request(1, 16), 2.0);
  ASSERT_EQ(outcome.action, Action::Shrink);
  m.abort_shrink(a, 3.0);
  EXPECT_EQ(m.job(a).allocated(), 16);
  for (int node : m.job(a).nodes) {
    EXPECT_FALSE(m.cluster().node(node).draining);
  }
  EXPECT_THROW(m.complete_shrink(a, 4.0), std::logic_error);
}

TEST(DmrCheck, NoActionWhenSaturated) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 8, 1, 8, 8), 0.0);
  m.schedule(0.0);
  const DmrOutcome outcome = m.dmr_check(a, request(1, 8, 8), 1.0);
  EXPECT_EQ(outcome.action, Action::None);
  EXPECT_EQ(m.counters().no_actions, 1);
}

TEST(DmrAsync, DeferredDecisionAppliesAgainstNewState) {
  // The Fig. 6 pathology: decide expand-to-8 when 4 nodes are idle, but
  // by apply time 12 more became idle — the job still only gets 8.
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 4, 1, 16), 0.0);
  const JobId hog = m.submit(spec("hog", 12, 12, 12, 0, false), 0.0);
  m.schedule(0.0);
  EXPECT_EQ(m.idle_nodes(), 0);
  m.job_finished(hog, 5.0);
  EXPECT_EQ(m.idle_nodes(), 12);

  const PolicyDecision decision = m.dmr_decide(a, request(1, 16), 6.0);
  ASSERT_EQ(decision.action, Action::Expand);
  EXPECT_EQ(decision.new_size, 16);

  // Meanwhile another job grabs 8 of the idle nodes.
  const JobId c = m.submit(spec("c", 8, 8, 8, 0, false), 7.0);
  m.schedule(7.0);
  EXPECT_TRUE(m.job(c).running());

  // Applying the outdated decision must fail (not enough nodes for +12).
  const DmrOutcome outcome = m.dmr_apply(a, decision, 8.0);
  EXPECT_EQ(outcome.action, Action::None);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(m.counters().aborted_expands, 1);
  EXPECT_EQ(m.job(a).allocated(), 4);
}

TEST(DmrAsync, StaleShrinkOvertakenIsAborted) {
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 8), 0.0);
  m.schedule(0.0);
  PolicyDecision stale;
  stale.action = Action::Shrink;
  stale.new_size = 8;  // equal to current: nothing to release
  const DmrOutcome outcome = m.dmr_apply(a, stale, 1.0);
  EXPECT_EQ(outcome.action, Action::None);
  EXPECT_TRUE(outcome.aborted);
}

TEST(Manager, ExpandAbortWhenResizerLosesRace) {
  // A boosted pending user job outranks the resizer: the expansion must
  // abort cleanly (the Section V-B1 timeout path).
  Manager m(config(16));
  const JobId a = m.submit(spec("a", 4, 1, 16), 0.0);
  m.schedule(0.0);
  // 12 idle; competitor wants 12 and is boosted above the resizer.
  const JobId rival = m.submit(spec("rival", 12, 12, 12, 0, false), 1.0);
  // Force rival ahead of the resizer by boosting it first.
  PolicyDecision decision;
  decision.action = Action::Expand;
  decision.new_size = 16;
  // Boost rival via a shrink decision boost path is indirect; instead
  // exercise dmr_apply after rival became running.
  m.schedule(1.0);
  EXPECT_TRUE(m.job(rival).running());
  const DmrOutcome outcome = m.dmr_apply(a, decision, 2.0);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(m.job(a).allocated(), 4);
  // No resizer leftovers.
  EXPECT_EQ(m.idle_nodes(), 0);
  EXPECT_TRUE(m.pending_snapshot(2.0).empty());
}

TEST(Manager, CallbacksFire) {
  Manager m(config(8));
  int starts = 0, ends = 0;
  int last_alloc = -1;
  m.on_start([&](const Job&) { ++starts; });
  m.on_end([&](const Job&) { ++ends; });
  m.on_alloc_change([&](int allocated, int) { last_alloc = allocated; });
  const JobId a = m.submit(spec("a", 4), 0.0);
  m.schedule(0.0);
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(last_alloc, 4);
  m.job_finished(a, 1.0);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(last_alloc, 0);
}

TEST(Manager, RejectsBadSubmissions) {
  Manager m(config(8));
  EXPECT_THROW(m.submit(spec("zero", 0), 0.0), std::invalid_argument);
  EXPECT_THROW(m.submit(spec("huge", 9), 0.0), std::invalid_argument);
  JobSpec bad = spec("bounds", 4);
  bad.min_nodes = 8;
  bad.max_nodes = 4;
  EXPECT_THROW(m.submit(bad, 0.0), std::invalid_argument);
}

TEST(Manager, GuardsStateTransitions) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 4), 0.0);
  EXPECT_THROW(m.job_finished(a, 1.0), std::logic_error);  // not running
  EXPECT_THROW(m.dmr_check(a, request(1, 8), 1.0), std::logic_error);
  EXPECT_THROW(m.job(999), std::out_of_range);
}

TEST(Manager, ScheduleIsIncremental) {
  Manager m(config(8));
  m.submit(spec("a", 4), 0.0);
  const auto first = m.schedule(0.0);
  EXPECT_EQ(first.size(), 1u);
  const auto passes = m.counters().schedule_passes;
  // No placement-relevant event since the last pass: the request is
  // short-circuited.
  EXPECT_TRUE(m.schedule(1.0).empty());
  EXPECT_TRUE(m.schedule(2.0).empty());
  EXPECT_EQ(m.counters().schedule_passes, passes);
  EXPECT_GE(m.counters().schedule_passes_saved, 2);
  EXPECT_EQ(m.counters().schedule_requests, passes + 2);
  // A submission re-arms the pass.
  m.submit(spec("b", 4), 3.0);
  EXPECT_EQ(m.schedule(3.0).size(), 1u);
  EXPECT_GT(m.counters().schedule_passes, passes);
}

TEST(Manager, SnapshotsAreCachedAndInvalidate) {
  Manager m(config(8));
  const JobId a = m.submit(spec("a", 8), 0.0);
  const JobId b = m.submit(spec("b", 4), 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(a).running());
  const auto& pending = m.pending_snapshot(2.0);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0]->id, b);
  // Same state: the cached snapshot is reused, element storage included.
  const Job* const* storage = pending.data();
  EXPECT_EQ(m.pending_snapshot(2.0).data(), storage);
  const auto& running = m.running_snapshot();
  ASSERT_EQ(running.size(), 1u);
  EXPECT_EQ(running[0]->id, a);
  m.job_finished(a, 3.0);
  EXPECT_TRUE(m.job(b).running());
  EXPECT_TRUE(m.pending_snapshot(3.0).empty());
  ASSERT_EQ(m.running_snapshot().size(), 1u);
  EXPECT_EQ(m.running_snapshot()[0]->id, b);
}

RmsConfig heterogeneous_config() {
  RmsConfig c;
  c.partitions = {Partition{"fast", 4, 1.0}, Partition{"slow", 4, 0.5}};
  return c;
}

TEST(Manager, PartitionConstrainedSubmission) {
  Manager m(heterogeneous_config());
  EXPECT_EQ(m.cluster().size(), 8);
  JobSpec pinned = spec("pinned", 3);
  pinned.partition = "slow";
  const JobId id = m.submit(pinned, 0.0);
  m.schedule(0.0);
  ASSERT_TRUE(m.job(id).running());
  for (int node : m.job(id).nodes) {
    EXPECT_EQ(m.cluster().node(node).partition, 1);
  }
  // Unknown partitions and over-partition requests are rejected.
  JobSpec unknown = spec("x", 2);
  unknown.partition = "gpu";
  EXPECT_THROW(m.submit(unknown, 1.0), std::invalid_argument);
  JobSpec oversize = spec("y", 5);
  oversize.partition = "slow";
  EXPECT_THROW(m.submit(oversize, 1.0), std::invalid_argument);
}

TEST(Manager, MoldableHeadMoldsInSamePassAsBackfill) {
  // A pass that starts a rigid backfill job must still give a moldable
  // head its molding round before settling (regression: the incremental
  // fixpoint once broke out early and left the head pending).
  Manager m(config(10));
  m.submit(spec("hog", 4, 4, 4, 0, false), 0.0);
  m.schedule(0.0);
  JobSpec moldable = spec("mold", 10, 2, 10);
  moldable.moldable = true;
  const JobId b = m.submit(moldable, 1.0);
  JobSpec short_rigid = spec("short", 4, 4, 4, 0, false);
  short_rigid.time_limit = 50.0;
  const JobId c = m.submit(short_rigid, 2.0);
  m.schedule(2.0);
  EXPECT_TRUE(m.job(c).running());  // backfilled around the blocked head
  ASSERT_TRUE(m.job(b).running());  // molded onto the remaining nodes
  EXPECT_EQ(m.job(b).allocated(), 2);
}

TEST(Manager, UpdateRespectsPartitionCapacity) {
  Manager m(heterogeneous_config());
  JobSpec pinned = spec("pinned", 2);
  pinned.partition = "slow";
  const JobId id = m.submit(pinned, 0.0);
  // The slow partition only has 4 nodes; 5 would be unstartable forever.
  EXPECT_THROW(m.update_requested_nodes(id, 5, 1.0), std::invalid_argument);
  m.update_requested_nodes(id, 4, 1.0);
  ASSERT_TRUE(m.job(id).running());
  EXPECT_EQ(m.job(id).allocated(), 4);
}

TEST(Manager, PinnedExpandCappedByPartitionIdle) {
  // Regression: the policy once saw cluster-wide idle (6 nodes) and
  // granted an expansion the 4-node partition could not hold, making
  // submit_resizer throw out of dmr_check.
  Manager m(heterogeneous_config());
  JobSpec pinned = spec("pinned", 2, 1, 32);
  pinned.partition = "fast";
  const JobId id = m.submit(pinned, 0.0);
  m.schedule(0.0);
  const DmrOutcome outcome = m.dmr_check(id, request(1, 32), 1.0);
  EXPECT_EQ(outcome.action, Action::Expand);
  EXPECT_EQ(m.job(id).allocated(), 4);  // the whole partition, no more
}

TEST(Manager, PinnedJobIgnoresForeignPartitionQueue) {
  // A job queued for the *other* partition cannot be served by this
  // job's nodes, so it must not trigger a futile shrink.
  Manager m(heterogeneous_config());
  JobSpec hog = spec("hog", 4, 4, 4, 0, false);
  hog.partition = "slow";
  m.submit(hog, 0.0);
  JobSpec pinned = spec("a", 4, 1, 4);
  pinned.partition = "fast";
  const JobId a = m.submit(pinned, 0.0);
  m.schedule(0.0);
  JobSpec waiting = spec("b", 4, 4, 4, 0, false);
  waiting.partition = "slow";
  const JobId b = m.submit(waiting, 1.0);
  m.schedule(1.0);
  EXPECT_TRUE(m.job(b).pending());
  const DmrOutcome outcome = m.dmr_check(a, request(1, 4), 2.0);
  EXPECT_EQ(outcome.action, Action::None);
  EXPECT_EQ(m.job(a).allocated(), 4);
}

TEST(Manager, ExpandInheritsPartitionConstraint) {
  Manager m(heterogeneous_config());
  JobSpec pinned = spec("pinned", 2, 1, 4);
  pinned.partition = "slow";
  const JobId id = m.submit(pinned, 0.0);
  m.schedule(0.0);
  const DmrOutcome outcome = m.dmr_check(id, request(1, 4), 1.0);
  EXPECT_EQ(outcome.action, Action::Expand);
  EXPECT_EQ(m.job(id).allocated(), 4);
  for (int node : m.job(id).nodes) {
    EXPECT_EQ(m.cluster().node(node).partition, 1);
  }
}

TEST(Manager, WaitExecCompletionArithmetic) {
  Manager m(config(4));
  const JobId a = m.submit(spec("a", 4), 10.0);
  m.schedule(12.0);
  m.job_finished(a, 30.0);
  const Job& job = m.job(a);
  EXPECT_DOUBLE_EQ(job.wait_time(), 2.0);
  EXPECT_DOUBLE_EQ(job.execution_time(), 18.0);
  EXPECT_DOUBLE_EQ(job.completion_time(), 20.0);
}

}  // namespace
