// Integration tests of the runtime layer: the inhibitor, the DMR API
// negotiation over a live manager, and the full malleable loop with real
// ranks, spawns and data redistribution (using Flexible Sleep as the
// workload, via a tiny inline AppState).
#include <gtest/gtest.h>

#include <atomic>

#include "dmr/inhibitor.hpp"
#include "dmr/manager.hpp"
#include "dmr/reconfig_point.hpp"
#include "rt/malleable_app.hpp"
#include "util/config.hpp"
#include "rt/redistribute.hpp"
#include "smpi/universe.hpp"

namespace {

using namespace dmr;

TEST(Inhibitor, DisabledAllowsEverything) {
  dmr::Inhibitor inhibitor(0.0);
  for (double t : {0.0, 0.1, 0.2}) EXPECT_TRUE(inhibitor.allow(t));
}

TEST(Inhibitor, BlocksWithinPeriod) {
  dmr::Inhibitor inhibitor(5.0);
  EXPECT_TRUE(inhibitor.allow(0.0));
  EXPECT_FALSE(inhibitor.allow(2.0));
  EXPECT_FALSE(inhibitor.allow(4.999));
  EXPECT_TRUE(inhibitor.allow(5.0));
  EXPECT_FALSE(inhibitor.allow(7.0));
}

TEST(Inhibitor, ResetRearms) {
  dmr::Inhibitor inhibitor(5.0);
  EXPECT_TRUE(inhibitor.allow(0.0));
  inhibitor.reset();
  EXPECT_TRUE(inhibitor.allow(1.0));
}

TEST(Inhibitor, FromEnv) {
  util::set_env("DMR_SCHED_PERIOD", "2.5");
  EXPECT_DOUBLE_EQ(dmr::Inhibitor::from_env().period(), 2.5);
  util::unset_env("DMR_SCHED_PERIOD");
  EXPECT_DOUBLE_EQ(dmr::Inhibitor::from_env(7.0).period(), 7.0);
}

/// Minimal AppState: a distributed array where element i must equal
/// base + i + steps_done at all times — resizes must preserve it.
class ArrayState final : public rt::AppState {
 public:
  explicit ArrayState(std::size_t total) : total_(total) {}

  void init(int rank, int nprocs) override {
    const rt::BlockDistribution dist(total_, nprocs);
    local_.resize(dist.count(rank));
    for (std::size_t i = 0; i < local_.size(); ++i) {
      local_[i] = static_cast<double>(dist.begin(rank) + i);
    }
  }
  void compute_step(const smpi::Comm& world, int) override {
    world.barrier();
    for (double& v : local_) v += 1.0;
  }
  void send_state(const smpi::Comm& inter, int my_old_rank, int old_size,
                  int new_size) override {
    rt::send_blocks<double>(inter, my_old_rank,
                            std::span<const double>(local_), total_,
                            old_size, new_size, 11);
  }
  void recv_state(const smpi::Comm& parent, int my_new_rank, int old_size,
                  int new_size) override {
    local_ = rt::recv_blocks<double>(parent, my_new_rank, total_, old_size,
                                     new_size, 11);
  }
  std::vector<std::byte> serialize_global(const smpi::Comm& world) override {
    std::vector<double> full;
    world.gatherv(std::span<const double>(local_), full, 0);
    std::vector<std::byte> bytes(full.size() * sizeof(double));
    if (world.rank() == 0) {
      std::memcpy(bytes.data(), full.data(), bytes.size());
    } else {
      bytes.clear();
    }
    return bytes;
  }
  void deserialize_global(const smpi::Comm& world,
                          std::span<const std::byte> bytes) override {
    std::vector<std::vector<double>> chunks;
    if (world.rank() == 0) {
      const auto* data = reinterpret_cast<const double*>(bytes.data());
      const rt::BlockDistribution dist(total_, world.size());
      chunks.resize(static_cast<std::size_t>(world.size()));
      for (int r = 0; r < world.size(); ++r) {
        chunks[static_cast<std::size_t>(r)].assign(data + dist.begin(r),
                                                   data + dist.end(r));
      }
    }
    local_ = world.scatterv(chunks, 0);
  }

  /// Validate against the oracle and report via allreduce (collective).
  static void expect_consistent(const smpi::Comm& world,
                                const std::vector<double>& local,
                                std::size_t total, int steps) {
    const rt::BlockDistribution dist(total, world.size());
    int bad = 0;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const double expected =
          static_cast<double>(dist.begin(world.rank()) + i + steps);
      if (local[i] != expected) ++bad;
    }
    EXPECT_EQ(world.allreduce_sum(bad), 0);
  }

  const std::vector<double>& local() const { return local_; }
  std::size_t total() const { return total_; }

 private:
  std::size_t total_;
  std::vector<double> local_;
};

TEST(MalleableLoop, RunsWithoutResizes) {
  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 5;
  const auto report = rt::run_malleable(
      universe, nullptr, config,
      [] { return std::make_unique<ArrayState>(64); }, 4);
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
  EXPECT_EQ(report.final_size, 4);
  EXPECT_EQ(report.steps_executed, 5);
  EXPECT_TRUE(report.resizes.empty());
}

TEST(MalleableLoop, ForcedExpandPreservesData) {
  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 6;
  config.forced_decision = [](int step, int size)
      -> std::optional<rt::ResizeDecision> {
    if (step == 3 && size == 2) {
      rt::ResizeDecision d;
      d.action = rms::Action::Expand;
      d.new_size = 4;
      return d;
    }
    return std::nullopt;
  };
  const auto report = rt::run_malleable(
      universe, nullptr, config,
      [] { return std::make_unique<ArrayState>(50); }, 2);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(report.final_size, 4);
  ASSERT_EQ(report.resizes.size(), 1u);
  EXPECT_EQ(report.resizes[0].old_size, 2);
  EXPECT_EQ(report.resizes[0].new_size, 4);
  EXPECT_EQ(report.resizes[0].step, 3);
  EXPECT_GT(report.resizes[0].spawn_seconds, 0.0);
}

TEST(MalleableLoop, ForcedShrinkAndReExpand) {
  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 9;
  config.forced_decision = [](int step, int size)
      -> std::optional<rt::ResizeDecision> {
    rt::ResizeDecision d;
    if (step == 3 && size == 4) {
      d.action = rms::Action::Shrink;
      d.new_size = 2;
      return d;
    }
    if (step == 6 && size == 2) {
      d.action = rms::Action::Expand;
      d.new_size = 8;
      return d;
    }
    return std::nullopt;
  };
  const auto report = rt::run_malleable(
      universe, nullptr, config,
      [] { return std::make_unique<ArrayState>(41); }, 4);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(report.final_size, 8);
  ASSERT_EQ(report.resizes.size(), 2u);
  EXPECT_EQ(report.resizes[1].new_size, 8);
  EXPECT_EQ(universe.total_ranks_launched(), 4 + 2 + 8);
}

/// Final-state correctness: run with a scripted resize, then verify the
/// array equals the oracle at the end (checked inside the last step).
class CheckingArrayState final : public rt::AppState {
 public:
  CheckingArrayState(std::size_t total, int last_step,
                     std::atomic<int>& checks)
      : inner_(total), last_step_(last_step), checks_(checks) {}
  void init(int rank, int nprocs) override { inner_.init(rank, nprocs); }
  void compute_step(const smpi::Comm& world, int step) override {
    inner_.compute_step(world, step);
    if (step == last_step_) {
      ArrayState::expect_consistent(world, inner_.local(), inner_.total(),
                                    step + 1);
      ++checks_;
    }
  }
  void send_state(const smpi::Comm& inter, int r, int o, int n) override {
    inner_.send_state(inter, r, o, n);
  }
  void recv_state(const smpi::Comm& parent, int r, int o, int n) override {
    inner_.recv_state(parent, r, o, n);
  }
  std::vector<std::byte> serialize_global(const smpi::Comm& world) override {
    return inner_.serialize_global(world);
  }
  void deserialize_global(const smpi::Comm& world,
                          std::span<const std::byte> bytes) override {
    inner_.deserialize_global(world, bytes);
  }

 private:
  ArrayState inner_;
  int last_step_;
  std::atomic<int>& checks_;
};

TEST(MalleableLoop, DataMatchesOracleAfterResizeChain) {
  smpi::Universe universe;
  std::atomic<int> checks{0};
  rt::MalleableConfig config;
  config.total_steps = 8;
  config.forced_decision = [](int step, int size)
      -> std::optional<rt::ResizeDecision> {
    rt::ResizeDecision d;
    if (step == 2 && size == 3) {
      d.action = rms::Action::Expand;
      d.new_size = 5;
      return d;
    }
    if (step == 5 && size == 5) {
      d.action = rms::Action::Shrink;
      d.new_size = 2;
      return d;
    }
    return std::nullopt;
  };
  rt::run_malleable(
      universe, nullptr, config,
      [&] { return std::make_unique<CheckingArrayState>(67, 7, checks); },
      3);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(checks.load(), 2);  // final world had 2 ranks
}

TEST(DmrRuntime, NegotiatedExpandThroughManager) {
  // Full stack: RMS job on an 8-node virtual cluster; the runtime's
  // check_status negotiates an expansion (empty queue -> grow to max).
  rms::Manager manager(rms::RmsConfig{.nodes = 8, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(manager, [&now] { return now; });

  rms::JobSpec spec;
  spec.name = "flex";
  spec.requested_nodes = 2;
  spec.min_nodes = 1;
  spec.max_nodes = 8;
  spec.flexible = true;
  const rms::JobId job = session.submit(spec);
  session.schedule();
  ASSERT_TRUE(session.info().running());

  rms::DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, request);

  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 4;
  const auto report = rt::run_malleable(
      universe, runtime, config,
      [] { return std::make_unique<ArrayState>(32); }, 2);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(report.final_size, 8);
  EXPECT_EQ(manager.counters().expands, 1);
  EXPECT_EQ(manager.job(job).expansions, 1);
  // The job completed and released its (grown) allocation.
  EXPECT_EQ(manager.job(job).state, rms::JobState::Completed);
  EXPECT_EQ(manager.idle_nodes(), 8);
}

TEST(DmrRuntime, ShrinkReleasesNodesAndStartsQueuedJob) {
  rms::Manager manager(rms::RmsConfig{.nodes = 8, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(manager, [&now] { return now; });

  rms::JobSpec spec;
  spec.name = "flex";
  spec.requested_nodes = 8;
  spec.min_nodes = 1;
  spec.max_nodes = 8;
  spec.flexible = true;
  session.submit(spec);
  session.schedule();

  dmr::Session rigid_session(session.connection());
  rms::JobSpec rigid;
  rigid.name = "rigid";
  rigid.requested_nodes = 4;
  rigid.min_nodes = 4;
  rigid.max_nodes = 4;
  rigid_session.submit(rigid);
  rigid_session.schedule();
  ASSERT_TRUE(rigid_session.info().pending());

  rms::DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, request);

  smpi::Universe universe;
  rt::MalleableConfig config;
  config.total_steps = 4;
  const auto report = rt::run_malleable(
      universe, runtime, config,
      [] { return std::make_unique<ArrayState>(32); }, 8);
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  // Wide optimization: shrink to 4 so the queued rigid job can start.
  EXPECT_EQ(report.final_size, 4);
  EXPECT_TRUE(rigid_session.info().running());
  EXPECT_TRUE(rigid_session.info().priority_boost ||
              rigid_session.info().running());
  EXPECT_EQ(manager.counters().shrinks, 1);
}

TEST(DmrRuntime, InhibitorSuppressesNegotiation) {
  rms::Manager manager(rms::RmsConfig{.nodes = 8, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(manager, [&now] { return now; });
  rms::JobSpec spec;
  spec.name = "flex";
  spec.requested_nodes = 2;
  spec.min_nodes = 1;
  spec.max_nodes = 8;
  session.submit(spec);
  session.schedule();

  rms::DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  // Huge inhibitor period: only the first check reaches the manager.
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, request,
                                                      /*inhibitor=*/1e9);
  smpi::Universe universe;
  universe.launch("t", 2, [&](smpi::Context& ctx) {
    // First check: goes through (expand granted: empty queue).
    const auto first = runtime->check_status(ctx.world());
    EXPECT_EQ(first.action, rms::Action::Expand);
    // Second check: inhibited -> None, manager not contacted again.
    const auto second = runtime->check_status(ctx.world());
    EXPECT_EQ(second.action, rms::Action::None);
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(manager.counters().checks, 1);
}

TEST(DmrRuntime, AsyncDefersDecisionByOneStep) {
  rms::Manager manager(rms::RmsConfig{.nodes = 8, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(manager, [&now] { return now; });
  rms::JobSpec spec;
  spec.name = "flex";
  spec.requested_nodes = 2;
  spec.min_nodes = 1;
  spec.max_nodes = 8;
  const rms::JobId job = session.submit(spec);
  session.schedule();

  rms::DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, request);
  smpi::Universe universe;
  universe.launch("t", 2, [&](smpi::Context& ctx) {
    // icheck #1: nothing negotiated yet -> None, schedules negotiation.
    const auto first = runtime->icheck_status(ctx.world());
    EXPECT_EQ(first.action, rms::Action::None);
    // icheck #2: applies the expansion negotiated at step 1.
    const auto second = runtime->icheck_status(ctx.world());
    EXPECT_EQ(second.action, rms::Action::Expand);
    EXPECT_EQ(second.new_size, 8);
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  EXPECT_EQ(manager.job(job).allocated(), 8);
}

TEST(DmrRuntime, DecisionBroadcastConsistentAcrossRanks) {
  rms::Manager manager(rms::RmsConfig{.nodes = 8, .scheduler = {}});
  double now = 0.0;
  dmr::Session session(manager, [&now] { return now; });
  rms::JobSpec spec;
  spec.name = "flex";
  spec.requested_nodes = 4;
  spec.min_nodes = 1;
  spec.max_nodes = 8;
  session.submit(spec);
  session.schedule();
  rms::DmrRequest request;
  request.min_procs = 1;
  request.max_procs = 8;
  auto runtime = std::make_shared<dmr::ReconfigPoint>(session, request);
  smpi::Universe universe;
  std::mutex mu;
  std::vector<int> sizes;
  std::vector<size_t> host_counts;
  universe.launch("t", 4, [&](smpi::Context& ctx) {
    const auto decision = runtime->check_status(ctx.world());
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(decision.new_size);
    host_counts.push_back(decision.hosts.size());
  });
  universe.await_all();
  ASSERT_TRUE(universe.failures().empty()) << universe.failures()[0];
  ASSERT_EQ(sizes.size(), 4u);
  for (int s : sizes) EXPECT_EQ(s, sizes[0]);
  for (size_t h : host_counts) EXPECT_EQ(h, 8u);  // expanded to 8 hosts
}

}  // namespace
