// Property tests: system invariants under randomized operation sequences
// and parameter sweeps.
//
//  - Manager fuzz: any interleaving of submit / schedule / finish /
//    cancel / dmr_check / complete_shrink preserves cluster accounting
//    (no node owned twice, idle + allocated == total, job states sane).
//  - Driver seed sweep: for every seed, the flexible run of a workload
//    is deterministic and its makespan never exceeds the fixed run's by
//    more than the reconfiguration overhead bound.
//  - smpi fuzz: a random message storm between N ranks delivers every
//    message exactly once with per-pair FIFO order.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/models.hpp"
#include "drv/workload_driver.hpp"
#include "rms/manager.hpp"
#include "smpi/universe.hpp"
#include "util/rng.hpp"
#include "wl/feitelson.hpp"

namespace {

using namespace dmr;
using namespace dmr::rms;

// --- Manager fuzz ------------------------------------------------------------

void check_invariants(const Manager& manager, int cluster_nodes) {
  // Every node is owned by at most one job, and the books balance.
  std::set<int> owned;
  int allocated = 0;
  for (const Job* job : manager.jobs()) {
    if (!job->running()) {
      EXPECT_TRUE(job->nodes.empty())
          << "job " << job->id << " holds nodes while "
          << to_string(job->state);
      continue;
    }
    for (int node : job->nodes) {
      EXPECT_TRUE(owned.insert(node).second)
          << "node " << node << " owned twice";
      EXPECT_EQ(manager.cluster().node(node).owner, job->id);
    }
    allocated += job->allocated();
    EXPECT_GE(job->allocated(), 1);
    EXPECT_LE(job->allocated(), cluster_nodes);
  }
  EXPECT_LE(allocated, cluster_nodes);
  EXPECT_GE(manager.idle_nodes(), 0);
  // Timing sanity for finished jobs.
  for (const Job* job : manager.jobs()) {
    if (job->state == JobState::Completed) {
      EXPECT_GE(job->wait_time(), 0.0);
      EXPECT_GE(job->execution_time(), 0.0);
      EXPECT_DOUBLE_EQ(job->completion_time(),
                       job->wait_time() + job->execution_time());
    }
  }
}

class ManagerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManagerFuzz, InvariantsHoldUnderRandomOperations) {
  constexpr int kNodes = 16;
  Manager manager(RmsConfig{.nodes = kNodes, .scheduler = {}});
  util::Rng rng(GetParam());
  double now = 0.0;
  std::vector<JobId> live;
  std::map<JobId, bool> draining;

  for (int op = 0; op < 400; ++op) {
    now += rng.exponential_mean(5.0);
    const double dice = rng.uniform();
    if (dice < 0.35 || live.empty()) {
      JobSpec spec;
      spec.name = "fuzz" + std::to_string(op);
      spec.requested_nodes =
          static_cast<int>(rng.uniform_int(1, kNodes));
      spec.min_nodes = 1;
      spec.max_nodes = kNodes;
      spec.flexible = rng.bernoulli(0.7);
      spec.moldable = rng.bernoulli(0.2);
      spec.time_limit = rng.uniform(10.0, 500.0);
      live.push_back(manager.submit(spec, now));
      manager.schedule(now);
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const JobId id = live[pick];
      const Job& job = manager.job(id);
      if (job.finished()) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        draining.erase(id);
      } else if (draining.count(id) != 0) {
        manager.complete_shrink(id, now);
        draining.erase(id);
      } else if (job.pending()) {
        if (rng.bernoulli(0.3)) manager.cancel(id, now);
      } else if (job.running()) {
        const double action = rng.uniform();
        if (action < 0.4) {
          manager.job_finished(id, now);
        } else if (action < 0.5) {
          manager.cancel(id, now);
        } else {
          DmrRequest request;
          request.min_procs = 1;
          request.max_procs = kNodes;
          request.preferred =
              rng.bernoulli(0.5)
                  ? static_cast<int>(rng.uniform_int(1, kNodes))
                  : 0;
          const DmrOutcome outcome = manager.dmr_check(id, request, now);
          if (outcome.action == Action::Shrink) draining[id] = true;
        }
      }
    }
    check_invariants(manager, kNodes);
  }

  // Drain everything; the system must wind down cleanly.
  for (JobId id : live) {
    const Job& job = manager.job(id);
    if (job.finished()) continue;
    if (draining.count(id) != 0) manager.complete_shrink(id, now);
    manager.cancel(id, now);
  }
  check_invariants(manager, kNodes);
  EXPECT_EQ(manager.idle_nodes(), kNodes);
  EXPECT_TRUE(manager.all_done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- Driver seed sweep ---------------------------------------------------------

struct DriverSweepCase {
  std::uint64_t seed;
  int jobs;
};

class DriverSweep : public ::testing::TestWithParam<DriverSweepCase> {};

drv::WorkloadMetrics run_sweep(const DriverSweepCase& param, bool flexible) {
  wl::FeitelsonParams params;
  params.jobs = param.jobs;
  params.max_size = 20;
  params.mean_interarrival = 10.0;
  params.max_runtime = 300.0;
  params.seed = param.seed;
  const auto workload = wl::generate_feitelson(params);

  sim::Engine engine;
  drv::DriverConfig config;
  config.rms.nodes = 20;
  drv::WorkloadDriver driver(engine, config);
  for (const auto& job : workload) {
    drv::JobPlan plan;
    plan.arrival = job.arrival;
    plan.model = apps::fs_model(10, job.size, job.runtime / 10, 20,
                                std::size_t(1) << 24);
    plan.submit_nodes = job.size;
    plan.flexible = flexible;
    driver.add(std::move(plan));
  }
  return driver.run();
}

TEST_P(DriverSweep, FlexibleNeverCatastrophicallyWorse) {
  const auto fixed = run_sweep(GetParam(), false);
  const auto flexible = run_sweep(GetParam(), true);
  EXPECT_EQ(fixed.jobs, GetParam().jobs);
  EXPECT_EQ(flexible.jobs, GetParam().jobs);
  // The malleability contract: flexible completes the workload in at
  // most a small overhead factor of the fixed time, usually less.
  EXPECT_LT(flexible.makespan, fixed.makespan * 1.15)
      << "seed " << GetParam().seed;
  // Utilization within physical bounds and some reconfiguration done.
  EXPECT_GT(flexible.utilization, 0.0);
  EXPECT_LE(flexible.utilization, 1.0);
}

TEST_P(DriverSweep, RunsAreDeterministic) {
  const auto a = run_sweep(GetParam(), true);
  const auto b = run_sweep(GetParam(), true);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.wait.mean, b.wait.mean);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.expands, b.expands);
  EXPECT_EQ(a.shrinks, b.shrinks);
  EXPECT_EQ(a.checks, b.checks);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DriverSweep,
    ::testing::Values(DriverSweepCase{11, 12}, DriverSweepCase{22, 12},
                      DriverSweepCase{33, 20}, DriverSweepCase{44, 20},
                      DriverSweepCase{55, 30}, DriverSweepCase{66, 30}));

// --- smpi message storm ----------------------------------------------------------

TEST(SmpiStorm, EveryMessageDeliveredOnceInPairOrder) {
  constexpr int kRanks = 4;
  constexpr int kPerPair = 200;
  smpi::Universe universe;
  universe.launch("storm", kRanks, [&](smpi::Context& ctx) {
    // Each rank sends kPerPair sequenced messages to every other rank,
    // interleaved, then receives and checks sequence order per source.
    util::Rng rng(1000 + static_cast<std::uint64_t>(ctx.rank()));
    std::vector<int> next_seq(kRanks, 0);
    std::vector<int> targets;
    for (int r = 0; r < kRanks; ++r) {
      if (r == ctx.rank()) continue;
      for (int i = 0; i < kPerPair; ++i) targets.push_back(r);
    }
    rng.shuffle(targets);
    std::vector<int> sent(kRanks, 0);
    for (int target : targets) {
      const int payload[2] = {ctx.rank(), sent[static_cast<size_t>(target)]++};
      ctx.world().send(target, 77, std::span<const int>(payload, 2));
    }
    // Receive (kRanks-1) * kPerPair messages from anyone.
    std::vector<int> got(kRanks, 0);
    for (int i = 0; i < (kRanks - 1) * kPerPair; ++i) {
      const auto msg = ctx.world().recv<int>(smpi::kAnySource, 77);
      ASSERT_EQ(msg.size(), 2u);
      const int from = msg[0];
      const int seq = msg[1];
      EXPECT_EQ(seq, got[static_cast<size_t>(from)]++)
          << "out-of-order from " << from;
    }
    for (int r = 0; r < kRanks; ++r) {
      if (r != ctx.rank()) {
        EXPECT_EQ(got[static_cast<size_t>(r)], kPerPair);
      }
    }
  });
  universe.await_all();
  EXPECT_TRUE(universe.failures().empty());
}

// --- Feitelson sweep ---------------------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSweep, GeneratedWorkloadsAreWellFormed) {
  wl::FeitelsonParams params;
  params.jobs = 150;
  params.max_size = 32;
  params.mean_interarrival = 7.0;
  params.seed = GetParam();
  const auto jobs = wl::generate_feitelson(params);
  ASSERT_EQ(jobs.size(), 150u);
  double prev = 0.0;
  for (const auto& job : jobs) {
    EXPECT_GE(job.size, 1);
    EXPECT_LE(job.size, 32);
    EXPECT_GE(job.runtime, 1.0);
    EXPECT_GE(job.arrival, prev);
    prev = job.arrival;
    if (job.repeat_of >= 0) {
      EXPECT_LT(job.repeat_of, job.index);
      EXPECT_EQ(jobs[static_cast<size_t>(job.repeat_of)].size, job.size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
