// dmr::Session — a job's connection to the resource manager.
//
// A Connection serializes access to one Rms backend and stamps every
// call with the current time (wall clock in real mode, virtual time in
// the discrete-event simulation).  A Session adds job identity on top:
// it binds to exactly one job and guards its lifecycle, so completion is
// reported once no matter how many ranks reach the end.  Sessions of
// different jobs may share one Connection — that is how several
// malleable applications coexist on one virtual cluster.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "dmr/rms.hpp"
#include "dmr/types.hpp"

namespace dmr {

namespace redist {
class Strategy;
}  // namespace redist

/// Thread-safe, clocked access to an Rms backend.
class Connection {
 public:
  using Clock = std::function<double()>;

  Connection(Rms& rms, Clock clock);

  double now() const { return clock_(); }
  /// Unlocked backend access — single-threaded callers only.
  Rms& rms() { return rms_; }

  JobId submit(JobSpec spec);
  std::vector<JobId> schedule();
  void cancel(JobId id);
  void job_finished(JobId id);
  Outcome dmr_check(JobId id, const Request& request);
  Decision dmr_decide(JobId id, const Request& request);
  Outcome dmr_apply(JobId id, const Decision& decision);
  void complete_shrink(JobId id);
  void abort_shrink(JobId id);
  JobView query(JobId id) const;

 private:
  Rms& rms_;
  Clock clock_;
  mutable std::mutex mu_;
};

class Session {
 public:
  using Clock = Connection::Clock;

  /// Own a fresh connection to `rms`.
  Session(Rms& rms, Clock clock);
  /// Share an existing connection (multi-job setups).
  explicit Session(std::shared_ptr<Connection> connection);

  const std::shared_ptr<Connection>& connection() const {
    return connection_;
  }
  double now() const { return connection_->now(); }

  // --- job identity ----------------------------------------------------------

  /// Submit a job and bind this session to it.  Throws std::logic_error
  /// when the session is already bound.
  JobId submit(JobSpec spec);
  /// Bind to an already-submitted job.
  void bind(JobId id);
  bool bound() const { return job_ != kInvalidJob; }
  JobId job() const { return job_; }
  /// Run a scheduling pass (convenience passthrough).
  std::vector<JobId> schedule() { return connection_->schedule(); }

  // --- the bound job's protocol calls ----------------------------------------

  Outcome check(const Request& request);
  Decision decide(const Request& request);
  Outcome apply(const Decision& decision);
  void complete_shrink();
  void abort_shrink();
  JobView info() const;

  // --- data redistribution ---------------------------------------------------

  /// Strategy used to move this job's registered buffers on resizes
  /// (dmr::redist; nullptr = the runtime default, P2pPlan).  Set before
  /// launching the malleable loop.
  void set_redist_strategy(std::shared_ptr<redist::Strategy> strategy);
  const std::shared_ptr<redist::Strategy>& redist_strategy() const {
    return redist_strategy_;
  }

  // --- lifecycle -------------------------------------------------------------

  /// Report completion to the RMS.  Idempotent: only the first call
  /// reaches the backend (every rank of a collective finish may call it).
  void finish();
  void cancel();
  bool finished() const { return finished_; }

 private:
  JobId require_job() const;

  std::shared_ptr<Connection> connection_;
  JobId job_ = kInvalidJob;
  std::shared_ptr<redist::Strategy> redist_strategy_;
  std::atomic<bool> finished_{false};
};

}  // namespace dmr
