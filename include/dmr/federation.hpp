// Multi-cluster federation behind the dmr::Rms seam, re-exported for API
// consumers.  A dmr::Federation owns one dmr::Manager per member cluster
// and routes submissions between them through a pluggable placement
// policy; sessions, reconfiguring points and the workload driver work
// against it unchanged because it *is* a dmr::Rms.
//
//   dmr::Federation        — the routing facade (fed::Federation)
//   dmr::FederationConfig  — member ClusterSpecs + placement choice
//   dmr::ClusterSpec       — one member: name + RmsConfig
//   dmr::Placement         — built-in policy kinds (round-robin,
//                            least-loaded, best-fit-speed, queue-depth)
//   dmr::fed::PlacementPolicy — the interface custom policies implement
//   dmr::MemberMix          — parsed member-mix spec ("16x64,8x128:...")
#pragma once

#include "dmr/manager.hpp"   // IWYU pragma: export
#include "dmr/rms.hpp"       // IWYU pragma: export
#include "fed/federation.hpp"  // IWYU pragma: export
#include "fed/member_mix.hpp"  // IWYU pragma: export
#include "fed/placement.hpp"   // IWYU pragma: export

namespace dmr {

using fed::ClusterSpec;
using fed::Federation;
using fed::FederationConfig;
using fed::member_spec;
using fed::MemberMix;
using fed::parse_member_mix;
using fed::Placement;

}  // namespace dmr
