// Umbrella header for the DMR public API.
//
// The deliberately small surface an application needs:
//   dmr::Session        — a job's connection to the resource manager
//   dmr::ReconfigPoint  — the reconfiguring point called between steps
//                         (dmr_check_status / dmr_icheck_status behind
//                         dmr::Mode)
//   dmr::ReconfigEngine — the shared negotiate/defer/apply/drain state
//                         machine (used directly by virtual-time hosts)
//   dmr::Rms            — the resource-manager interface; dmr::Manager
//                         is the built-in implementation and
//                         dmr::Federation (<dmr/federation.hpp>) the
//                         multi-cluster routing facade over N of them
//   dmr::Request / Decision / Outcome / ResizeDecision — value types
//
// Real-mode applications add <dmr/malleable.hpp>; workload simulations
// add <dmr/simulation.hpp>; multi-cluster setups add
// <dmr/federation.hpp>.
#pragma once

#include "dmr/engine.hpp"          // IWYU pragma: export
#include "dmr/inhibitor.hpp"       // IWYU pragma: export
#include "dmr/manager.hpp"         // IWYU pragma: export
#include "dmr/reconfig_point.hpp"  // IWYU pragma: export
#include "dmr/rms.hpp"             // IWYU pragma: export
#include "dmr/session.hpp"         // IWYU pragma: export
#include "dmr/types.hpp"           // IWYU pragma: export
