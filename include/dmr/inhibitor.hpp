// The "checking inhibitor" of Section V-A.
//
// Iterative applications with short steps would otherwise negotiate with
// the RMS every iteration; the inhibitor ignores DMR API calls that occur
// within `period` of the last answered one.  The paper tunes this knob
// through NANOX_SCHED_PERIOD; we read DMR_SCHED_PERIOD as the default.
#pragma once

namespace dmr {

class Inhibitor {
 public:
  /// period <= 0 disables inhibition (every check goes through).
  explicit Inhibitor(double period = 0.0) : period_(period) {}

  /// Construct from the DMR_SCHED_PERIOD environment variable.
  static Inhibitor from_env(double fallback = 0.0);

  double period() const { return period_; }
  void set_period(double period) { period_ = period; }

  /// Returns true when a check at `now` is allowed; a granted check arms
  /// the inhibition window.
  bool allow(double now) {
    if (period_ <= 0.0) return true;
    if (armed_ && now - last_ < period_) return false;
    armed_ = true;
    last_ = now;
    return true;
  }

  /// Forget the window (used after a completed resize so the new process
  /// set starts fresh).
  void reset() { armed_ = false; }

 private:
  double period_;
  double last_ = 0.0;
  bool armed_ = false;
};

}  // namespace dmr
