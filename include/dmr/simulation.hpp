// Workload-scale simulation: the discrete-event half of the framework.
//
// Pulls in the virtual-time engine, the workload driver that runs whole
// job mixes through the resource manager (the machinery behind
// Figs. 3-12 and Table II), the application performance models of
// Table I, the workload sources (Feitelson generator, SWF trace
// ingester) and the sacct-style accounting ledger.
#pragma once

#include "apps/models.hpp"         // IWYU pragma: export
#include "dmr/federation.hpp"      // IWYU pragma: export
#include "dmr/manager.hpp"         // IWYU pragma: export
#include "dmr/workload.hpp"        // IWYU pragma: export
#include "drv/cost_model.hpp"      // IWYU pragma: export
#include "drv/metrics.hpp"         // IWYU pragma: export
#include "drv/workload_driver.hpp"  // IWYU pragma: export
#include "rms/accounting.hpp"      // IWYU pragma: export
#include "sim/engine.hpp"          // IWYU pragma: export
#include "sim/trace.hpp"           // IWYU pragma: export

namespace dmr {

using drv::CostModel;
using drv::DriverConfig;
using drv::JobPlan;
using drv::WorkloadDriver;
using drv::WorkloadMetrics;

}  // namespace dmr
