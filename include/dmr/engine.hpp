// dmr::ReconfigEngine — the one reconfiguring-point state machine.
//
// Every substrate used to carry its own copy of the negotiate -> (defer)
// -> apply -> drain-ACK -> complete/abort-shrink sequence: the real-mode
// runtime in rt::DmrRuntime and the discrete-event workload driver in
// drv::WorkloadDriver.  This class is the single remaining
// implementation.  It is clock-agnostic (time comes from the session's
// clock), substrate-agnostic (completion of the data movement is
// reported back through complete_shrink()/abort_shrink(), whatever
// "data movement" means for the caller), and mode-agnostic (the same
// object serves dmr_check_status and dmr_icheck_status semantics).
#pragma once

#include <functional>
#include <mutex>
#include <optional>

#include "dmr/inhibitor.hpp"
#include "dmr/session.hpp"
#include "dmr/types.hpp"
#include "redist/strategy.hpp"

namespace dmr {

class ReconfigEngine {
 public:
  /// Observer fired (after the engine lock is released) whenever an
  /// outcome with action != None is applied — the completion hook
  /// substrates use to start their redistribution work.  May call back
  /// into the engine.
  using ApplyHook = std::function<void(const Outcome&)>;

  explicit ReconfigEngine(Session& session, double inhibitor_period = 0.0,
                          ApplyHook on_apply = {});

  /// One reconfiguring point.
  ///
  ///  - std::nullopt: the inhibitor swallowed the call; the RMS was not
  ///    contacted.
  ///  - Sync: the outcome of negotiate + apply (dmr_check_status).
  ///  - Async: the outcome of applying the *previously* negotiated
  ///    decision (Action::None on the first call); a fresh negotiation is
  ///    scheduled for the next point unless an action was just applied
  ///    (dmr_icheck_status).
  ///
  /// Throws std::logic_error after the session finished.
  std::optional<Outcome> check(Mode mode, const Request& request);

  /// A shrink stays pending until the substrate drains the retiring
  /// ranks' data and calls complete_shrink() (paper: the management node
  /// collected every ACK) — or gives up with abort_shrink().
  bool shrink_pending() const;
  /// Release the draining nodes; no-op when no shrink is pending.
  void complete_shrink();
  /// Keep the allocation; no-op when no shrink is pending.
  void abort_shrink();

  /// Forget the inhibition window (fresh process set after a resize).
  void reset_inhibitor();
  void set_inhibitor_period(double period);
  double inhibitor_period() const;

  /// Observer fired (outside the engine lock) for every recorded
  /// redistribution report — the calibration tap: hosts typically bind
  /// it to drv::CostModel::observe so simulated resize costs track
  /// measured movement.
  using RedistObserver = std::function<void(const redist::Report&)>;
  void set_redist_observer(RedistObserver observer);

  /// Record the measured (or modeled) cost of one completed
  /// redistribution.  Substrates call this once per resize; the totals
  /// feed Outcome reporting and cost-model calibration.
  void record_redistribution(const redist::Report& report);
  /// Most recent redistribution report (zeroed before the first resize).
  redist::Report last_redistribution() const;
  /// Sum over every redistribution recorded on this engine.
  redist::Report total_redistribution() const;

  Session& session() { return session_; }
  JobId job() const { return session_.job(); }

 private:
  Session& session_;
  ApplyHook on_apply_;
  RedistObserver redist_observer_;
  mutable std::mutex mu_;
  Inhibitor inhibitor_;
  /// Decision negotiated at the previous asynchronous point, to be
  /// applied at the next one (possibly outdated by then).
  std::optional<Decision> deferred_;
  redist::Report last_redistribution_;
  redist::Report total_redistribution_;
  bool shrink_pending_ = false;
};

}  // namespace dmr
