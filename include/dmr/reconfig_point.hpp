// dmr::ReconfigPoint — the entry point applications call between steps.
//
// The public face of the paper's `dmr_check_status` (Mode::Sync) and
// `dmr_icheck_status` (Mode::Async): a collective over the job's current
// world communicator.  Rank 0 runs the shared ReconfigEngine state
// machine against the RMS; the decision — action, granted size and the
// host list for the spawn — is broadcast so every rank acts on the same
// verdict, mirroring Nanos++'s single point of contact with Slurm.
#pragma once

#include <memory>
#include <mutex>

#include "dmr/engine.hpp"
#include "dmr/session.hpp"
#include "dmr/types.hpp"

namespace dmr {

namespace smpi {
class Comm;
}  // namespace smpi

class ReconfigPoint {
 public:
  ReconfigPoint(Session& session, Request request,
                double inhibitor_period = 0.0);

  /// Collective reconfiguring point over `world`.  Returns None when the
  /// inhibitor swallowed the call or the RMS granted nothing.
  ResizeDecision check(const smpi::Comm& world, Mode mode);

  /// dmr_check_status: negotiate and apply now.
  ResizeDecision check_status(const smpi::Comm& world) {
    return check(world, Mode::Sync);
  }
  /// dmr_icheck_status: apply the previous point's decision, renegotiate.
  ResizeDecision icheck_status(const smpi::Comm& world) {
    return check(world, Mode::Async);
  }

  /// After the offload/data movement completes, finish the shrink
  /// protocol (drain ACKs -> release).  Collective; call once per old
  /// process set.  The world barrier is the paper's all-to-one ACK wave.
  void finish_shrink(const smpi::Comm& world);

  /// The final process set reports completion (idempotent).
  void finish_job(const smpi::Comm& world);

  JobId job() const { return session_.job(); }
  Session& session() { return session_; }
  ReconfigEngine& engine() { return engine_; }

  Request request() const {
    std::lock_guard<std::mutex> lock(request_mu_);
    return request_;
  }
  /// Change the request conveyed at future reconfiguring points.  This is
  /// how *evolving* applications (Feitelson's fourth class) drive policy
  /// mode 1: setting min_procs above the current size strongly suggests
  /// an expansion, max_procs below it a shrink.  Call from rank 0 before
  /// the collective check.
  void set_request(const Request& request) {
    std::lock_guard<std::mutex> lock(request_mu_);
    request_ = request;
  }

 private:
  ResizeDecision negotiate(Mode mode);
  ResizeDecision broadcast(const smpi::Comm& world, ResizeDecision decision);

  Session& session_;
  ReconfigEngine engine_;
  mutable std::mutex request_mu_;
  Request request_;
};

}  // namespace dmr
