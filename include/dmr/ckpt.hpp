// Checkpoint/restart baseline (the "CR" bars of Fig. 1): serialize the
// application state, tear the job down, resubmit at the new size and
// restore — the conventional alternative DMR is measured against.
#pragma once

#include "ckpt/checkpoint.hpp"  // IWYU pragma: export
#include "ckpt/cr_runner.hpp"   // IWYU pragma: export
