// Build provenance for self-describing bench rows.
//
// Every BENCH_*.json trajectory row carries the git revision the binary
// was built from, an ISO-8601 UTC timestamp and the thread count, so
// numbers recorded across PRs stay attributable and comparable.  The
// git sha is captured by CMake at configure time (cmake/
// build_info.cpp.in); "unknown" outside a git checkout.
#pragma once

#include <string>

namespace dmr {

/// Short git revision of the configured source tree ("unknown" when
/// CMake could not resolve one).
const char* git_sha();

/// Current UTC time as ISO-8601 ("2026-08-07T12:34:56Z").
std::string iso8601_utc_now();

/// The provenance fields of one bench-JSON row, brace-free:
/// "git_sha":"...","timestamp":"...","threads":N — splice into any row.
std::string bench_provenance_fields(int threads);

}  // namespace dmr
