// Reporting and configuration utilities used by the examples and the
// figure/table reproduction benches: ASCII charts and tables, summary
// statistics, deterministic RNG and key=value / environment parsing.
#pragma once

#include "util/chart.hpp"   // IWYU pragma: export
#include "util/clock.hpp"   // IWYU pragma: export
#include "util/config.hpp"  // IWYU pragma: export
#include "util/log.hpp"     // IWYU pragma: export
#include "util/rng.hpp"     // IWYU pragma: export
#include "util/stats.hpp"   // IWYU pragma: export
#include "util/table.hpp"   // IWYU pragma: export
