// Real-mode malleable execution: the application-side half of the API.
//
// Pulls in everything a real (threaded-rank) malleable application
// needs: the process universe and communicators, the AppState interface
// with the iterate -> check -> (spawn + offload + retire) loop of
// Listings 2-3, and the block-redistribution helpers.
#pragma once

#include "dmr/reconfig_point.hpp"  // IWYU pragma: export
#include "dmr/session.hpp"         // IWYU pragma: export
#include "dmr/types.hpp"           // IWYU pragma: export
#include "rt/buffered_state.hpp"   // IWYU pragma: export
#include "rt/malleable_app.hpp"    // IWYU pragma: export
#include "rt/redistribute.hpp"     // IWYU pragma: export
#include "smpi/universe.hpp"       // IWYU pragma: export

namespace dmr {

using rt::AppState;
using rt::BufferedAppState;
using rt::BlockDistribution;
using rt::ForcedDecision;
using rt::MalleableConfig;
using rt::ResizeRecord;
using rt::RunReport;
using rt::recv_blocks;
using rt::run_malleable;
using rt::send_blocks;
using rt::start_malleable;
using rt::StateFactory;

}  // namespace dmr
