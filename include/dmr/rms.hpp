// The resource-manager interface the DMR facade is written against.
//
// `rms::Manager` (the built-in virtual Slurm) is the reference
// implementation; alternative backends (a real Slurm adapter, a sharded
// manager, a mock) implement this interface and slot in underneath
// `dmr::Session` / `dmr::ReconfigEngine` without touching the protocol
// code.  Every mutation takes `now` so one implementation serves both
// wall-clock and discrete-event time.
#pragma once

#include <vector>

#include "dmr/types.hpp"

namespace dmr {

class Rms {
 public:
  virtual ~Rms() = default;

  // --- job lifecycle -------------------------------------------------------

  virtual JobId submit(JobSpec spec, double now) = 0;
  virtual void cancel(JobId id, double now) = 0;
  /// The job's processes exited; release resources and reschedule.
  virtual void job_finished(JobId id, double now) = 0;
  /// Run a scheduling pass; returns ids of jobs started.
  virtual std::vector<JobId> schedule(double now) = 0;

  // --- the DMR resize protocol (Sections IV-V) ------------------------------

  /// Synchronous reconfiguring point: policy decision + immediate
  /// application (dmr_check_status).
  virtual Outcome dmr_check(JobId id, const Request& request, double now) = 0;
  /// Policy decision only, no side effects (first half of the
  /// asynchronous dmr_icheck_status).
  virtual Decision dmr_decide(JobId id, const Request& request,
                              double now) = 0;
  /// Apply a previously negotiated decision; may abort when the system
  /// state has moved on (the Section VIII-C "outdated decision" path).
  virtual Outcome dmr_apply(JobId id, const Decision& decision,
                            double now) = 0;
  /// Complete a shrink after the drain ACKs: releases draining nodes.
  virtual void complete_shrink(JobId id, double now) = 0;
  /// Abort a shrink (failed drain): undrain, keep the allocation.
  virtual void abort_shrink(JobId id, double now) = 0;

  // --- queries ---------------------------------------------------------------

  virtual JobView query(JobId id) const = 0;
};

}  // namespace dmr
