// Observability: tracing, self-profiling and the unified counter
// registry.
//
// Attach an obs::TraceRecorder and/or obs::Profiler to a run through
// obs::Hooks (DriverConfig::hooks, ServiceConfig reaches it via its
// driver config) and the instrumented layers emit:
//  - a Perfetto-loadable Chrome trace-event timeline (job lifecycle
//    spans, schedule/reconfig/redistribution phases, placement
//    decisions, counter tracks), and
//  - a wall-clock self-profile (events/sec, time in schedule vs
//    placement vs redistribution, peak RSS) whose JSON rows build the
//    BENCH_engine.json trajectory, and
//  - with an obs::WaitAttributor attached, a per-job wait decomposition
//    (typed BlockReason segments whose seconds sum exactly to the wait)
//    written as the sidecar tools/dmr_explain ingests.
// obs::Registry is the one named counter surface every subsystem's
// ad-hoc tallies are mirrored into (WorkloadDriver::fill_counters,
// svc::Service::counters()).
#pragma once

#include "dmr/build_info.hpp"  // IWYU pragma: export
#include "obs/attr.hpp"        // IWYU pragma: export
#include "obs/hooks.hpp"       // IWYU pragma: export
#include "obs/profiler.hpp"    // IWYU pragma: export
#include "obs/registry.hpp"    // IWYU pragma: export
#include "obs/trace.hpp"       // IWYU pragma: export
#include "obs/validate.hpp"    // IWYU pragma: export
