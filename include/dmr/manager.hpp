// The built-in resource manager backend ("our Slurm"), re-exported for
// API consumers.  `dmr::Manager` is the reference `dmr::Rms`
// implementation: backfill scheduling, the Algorithm-1 reconfiguration
// policy and the resizer-job resize protocol.
#pragma once

#include "dmr/rms.hpp"     // IWYU pragma: export
#include "dmr/types.hpp"   // IWYU pragma: export
#include "rms/manager.hpp"  // IWYU pragma: export

namespace dmr {

using rms::Manager;
using rms::RmsConfig;
using rms::SchedulerConfig;

}  // namespace dmr
