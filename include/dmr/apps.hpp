// The bundled malleable applications (Table I): Conjugate Gradient,
// Jacobi, N-body and Flexible Sleep, each implementing rt::AppState so
// they can run under the real-mode malleable loop.
#pragma once

#include "apps/cg.hpp"              // IWYU pragma: export
#include "apps/flexible_sleep.hpp"  // IWYU pragma: export
#include "apps/jacobi.hpp"          // IWYU pragma: export
#include "apps/models.hpp"          // IWYU pragma: export
#include "apps/nbody.hpp"           // IWYU pragma: export
