// Workload sources: the Feitelson synthetic generator and the SWF
// (Standard Workload Format) trace ingester, plus the shared wl::Workload
// job model both reduce to and its conversion into driver JobPlans.
//
// Typical replay of an archival trace:
//
//   auto trace  = dmr::wl::parse_swf_file("KTH-SP2-1996-2.1-cln.swf");
//   dmr::wl::TraceShaper shaper;
//   shaper.target_nodes = 64;
//   dmr::wl::ShapeReport report;
//   auto workload = shaper.shape(trace, &report);   // surface report!
//   for (auto& plan : dmr::drv::plans_from_workload(workload, {}))
//     driver.add(std::move(plan));
#pragma once

#include "drv/plan.hpp"      // IWYU pragma: export
#include "wl/feitelson.hpp"  // IWYU pragma: export
#include "wl/swf.hpp"        // IWYU pragma: export
#include "wl/workload.hpp"   // IWYU pragma: export

namespace dmr {

using wl::Malleability;
using wl::MalleabilityConfig;
using wl::ShapeReport;
using wl::SwfParseError;
using wl::SwfTrace;
using wl::TraceShaper;
using wl::Workload;
using wl::WorkloadJob;

}  // namespace dmr
