// Correctness analysis: the opt-in runtime invariant auditor.
//
// Attach a chk::Auditor through the same obs::Hooks bundle the tracer
// and profiler use (DriverConfig::hooks.auditor) and the instrumented
// layers machine-check their invariants as the run executes:
//  - the per-job lifecycle DFA (submitted -> queued -> running ->
//    {reconfiguring <-> running} -> done),
//  - node conservation in rms::Manager / rms::Cluster,
//  - sim::Engine event-queue monotonicity and (time, lane, seq) order,
//  - federation id-range disjointness and routing-stride consistency,
//  - byte conservation per dmr::redist report.
// Violations collect into a structured chk::Report (JSON with the
// BENCH_*.json provenance fields); Options::fail_fast throws
// chk::AuditError at the first one instead.  Detached, every hook site
// is one null pointer test.
//
// The static half of the chk:: layer is tools/dmr_lint (build target
// `dmr_lint`, ctest `lint`): the project-rule checker that keeps
// determinism hazards out of src/ at commit time.
#pragma once

#include "chk/auditor.hpp"  // IWYU pragma: export
#include "obs/hooks.hpp"    // IWYU pragma: export
