// Public value types of the DMR API.
//
// These are the canonical definitions of everything the paper's
// `dmr_check_status` / `dmr_icheck_status` interface exchanges between an
// application, the runtime and the resource manager: the request an
// application conveys at a reconfiguring point, the policy decision the
// RMS takes, and the outcome of applying it.  The internal layers
// (`dmr::rms`, `dmr::rt`, `dmr::drv`) alias these types rather than
// defining their own, so a value can cross every layer without
// conversion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dmr {

using JobId = std::int64_t;
constexpr JobId kInvalidJob = -1;

/// How a reconfiguring point talks to the RMS (Section V-A).
enum class Mode {
  /// dmr_check_status: negotiate and apply the action in the same call.
  Sync,
  /// dmr_icheck_status: apply the action negotiated at the *previous*
  /// point, then schedule a fresh negotiation; decisions may be outdated
  /// when applied (Section VIII-C).
  Async,
};

enum class Action { None, Expand, Shrink };

std::string to_string(Action action);
std::string to_string(Mode mode);

/// What a reconfiguring point conveys to the RMS (the DMR API inputs).
struct Request {
  int min_procs = 1;
  int max_procs = 1;
  int factor = 2;
  /// 0 = no preference (maximum RMS freedom).
  int preferred = 0;
};

/// The reconfiguration policy's verdict (Algorithm 1), before any
/// resources move.
struct Decision {
  Action action = Action::None;
  /// Target process count when action != None.
  int new_size = 0;
  /// Queued job to boost to max priority when shrinking (Algorithm 1,
  /// line 18); kInvalidJob otherwise.
  JobId boost_target = kInvalidJob;
};

/// Result of applying a decision: the resize protocol's side of the
/// story.
struct Outcome {
  Action action = Action::None;
  /// Granted process count (== allocation after the resize completes).
  int new_size = 0;
  /// Expand: node ids added to the job (already attached).
  std::vector<int> added_nodes;
  /// Shrink: node ids now draining; released by complete_shrink().
  std::vector<int> draining_nodes;
  /// Queued job boosted to max priority by a shrink decision.
  JobId boosted = kInvalidJob;
  /// True when the policy granted an action but the resizer-job protocol
  /// could not obtain the nodes (timeout/abort path of Section V-B1), or
  /// an asynchronously negotiated decision was already outdated.
  bool aborted = false;
  /// Data movement attributed to this resize, from the redist::Report.
  /// The virtual-time substrate stamps these when it prices the resize
  /// (drv::WorkloadDriver); in real mode the movement happens after the
  /// outcome is returned, so hosts read it from ResizeRecord or
  /// ReconfigEngine::last_redistribution() instead.
  std::size_t bytes_redistributed = 0;
  double redistribution_seconds = 0.0;
};

enum class JobState {
  Pending,    // queued, waiting for an allocation
  Running,    // allocated and executing
  Completed,  // finished normally
  Cancelled,  // removed before or during execution
};

std::string to_string(JobState state);

/// Immutable submission-time description of a job.
struct JobSpec {
  std::string name;
  /// Nodes requested at submission (the paper submits every job at its
  /// user-preferred "fast execution" size).
  int requested_nodes = 1;
  /// Malleability bounds (Table I: "Minimum"/"Maximum" processes).
  int min_nodes = 1;
  int max_nodes = 1;
  /// Preferred size conveyed to the RMS at reconfiguring points; 0 means
  /// "no preference" (gives the RMS full freedom, as in the FS study).
  int preferred_nodes = 0;
  /// Resize factor: new sizes must be cur*factor^k or cur/factor^k.
  int factor = 2;
  /// Whether the job participates in dynamic reconfiguration.
  bool flexible = false;
  /// Wall-clock limit estimate used by the backfill scheduler.
  double time_limit = 3600.0;
  /// Base quality-of-service priority component.
  double qos = 0.0;
  /// Run only while this job is running (used by resizer jobs).
  std::optional<JobId> depends_on;
  /// Resizer jobs are internal bookkeeping helpers, invisible to metrics.
  bool internal_resizer = false;
  /// Cluster partition this job is constrained to; empty = any (the job
  /// may span partitions).  Unknown names are rejected at submission.
  std::string partition;
  /// Moldable submission (the paper's future-work extension): instead of
  /// a rigid `requested_nodes`, the scheduler may start the job with any
  /// size in [min_nodes, requested_nodes] if that lets it start earlier.
  bool moldable = false;
};

/// Read-only job snapshot handed across the API boundary (the public
/// stand-in for the manager's internal Job record).
struct JobView {
  JobId id = kInvalidJob;
  std::string name;
  JobState state = JobState::Pending;
  /// Current allocation size (0 unless running).
  int allocated = 0;
  /// Host names of the full current allocation.
  std::vector<std::string> hosts;
  /// Hosts that survive a pending shrink (== hosts when none pending).
  std::vector<std::string> surviving_hosts;
  bool priority_boost = false;
  int expansions = 0;
  int shrinks = 0;
  double submit_time = 0.0;
  double start_time = -1.0;
  double end_time = -1.0;

  bool pending() const { return state == JobState::Pending; }
  bool running() const { return state == JobState::Running; }
  bool finished() const {
    return state == JobState::Completed || state == JobState::Cancelled;
  }
};

/// What the application sees at a reconfiguring point: the granted
/// action plus the node list of the new configuration (the host list
/// Slurm hands to MPI_Comm_spawn).
struct ResizeDecision {
  Action action = Action::None;
  /// Process count of the new configuration when action != None.
  int new_size = 0;
  /// Node names for the new process set.
  std::vector<std::string> hosts;
};

}  // namespace dmr
