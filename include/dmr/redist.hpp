// dmr::redist — the data-redistribution subsystem.
//
// Applications register their resize-relevant state as typed buffers
// (dmr::Buffer: element size, global count, layout) in a per-rank
// dmr::redist::Registry; on a resize a pluggable redist::Strategy moves
// every registered buffer across the old -> new process set and reports
// the measured cost (redist::Report), which calibrates drv::CostModel.
//
// Shipped strategies: P2pPlan (overlap-plan rank-to-rank transfers),
// PipelinedChunks (chunked bounded-in-flight streams) and
// CheckpointRoute (the C/R baseline through the ckpt store).
#pragma once

#include "redist/buffer.hpp"            // IWYU pragma: export
#include "redist/checkpoint_route.hpp"  // IWYU pragma: export
#include "redist/p2p_plan.hpp"          // IWYU pragma: export
#include "redist/pipelined.hpp"         // IWYU pragma: export
#include "redist/strategy.hpp"          // IWYU pragma: export

namespace dmr {

/// The buffer descriptor applications fill when registering state.
using Buffer = redist::Buffer;
using redist::Layout;

}  // namespace dmr
