// Resident service mode: the simulator as a long-running system.
//
// Streaming submissions through a bounded SPSC ring with explicit
// backpressure, sliding-window live metrics as JSON-lines, and
// snapshot/restore with what-if forks from any simulated instant.
#pragma once

#include "svc/metrics_window.hpp"  // IWYU pragma: export
#include "svc/service.hpp"         // IWYU pragma: export
#include "svc/snapshot.hpp"        // IWYU pragma: export
#include "svc/submit_queue.hpp"    // IWYU pragma: export

namespace dmr {

using svc::fork_and_run;
using svc::ForkReport;
using svc::JobRequest;
using svc::restore;
using svc::snapshot;
using svc::MetricsSample;
using svc::PushResult;
using svc::Service;
using svc::ServiceConfig;
using svc::Snapshot;
using svc::SubmitQueue;
using svc::WhatIf;

}  // namespace dmr
