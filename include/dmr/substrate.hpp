// The execution substrates underneath the framework, exposed for
// microbenchmarks and advanced embedders: the threaded MPI-like message
// universe (smpi) and the discrete-event engine (sim).
#pragma once

#include "sim/engine.hpp"      // IWYU pragma: export
#include "smpi/comm.hpp"       // IWYU pragma: export
#include "smpi/mailbox.hpp"    // IWYU pragma: export
#include "smpi/universe.hpp"   // IWYU pragma: export
